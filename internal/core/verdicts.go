package core

import "sync"

// Cross-shard and cross-campaign verdict sharing.
//
// PR 6's pruning collapses equal-fingerprint failure points within one
// process. A VerdictSource extends the same idea across processes: before
// running a class representative, the runner asks the source whether the
// fingerprint has already been resolved elsewhere — by another shard of the
// same campaign (ClassRegistry, held by the -serve daemon) or by a previous
// campaign (the on-disk verdict cache in internal/vcache). The protocol
// preserves PR 6's asymmetric verdict rule: only representatives that
// completed cleanly ever attribute across shards or campaigns; a dirty,
// cancelled, abandoned or quarantined representative forces every claimant
// to run inline.
//
// Claim is called on the pre-failure thread, once per class, after the
// class has been reserved locally (classTesting) — so a slow or remote
// source never races the parking path. The four answers:
//
//	VerdictOwn:    nobody has this class; the caller becomes the global
//	               representative and must publish its outcome via Resolve.
//	VerdictRun:    another shard's representative is in flight (or already
//	               went dirty); run the post-failure execution inline and do
//	               NOT publish — only the owner resolves.
//	VerdictClean:  a representative elsewhere completed cleanly; attribute
//	               the verdict (CrossShardPrunedFailurePoints bucket) and
//	               run nothing.
//	VerdictCached: a previous campaign resolved the class cleanly; attribute
//	               (CacheHitFailurePoints bucket) and re-seed the cached
//	               reports so the merged report set stays byte-identical to
//	               an uncached run.
type ClassVerdict uint8

const (
	VerdictOwn ClassVerdict = iota
	VerdictRun
	VerdictClean
	VerdictCached
)

// ClassClaim is a VerdictSource's answer to Claim. Reports carries the
// class's reports for VerdictCached answers (a clean representative may
// still have observed bugs — races, semantic bugs — and a cache hit must
// not lose them); it is empty for every other verdict.
type ClassClaim struct {
	Verdict ClassVerdict
	Reports []Report
}

// VerdictSource answers crash-state class claims for one run. Claim must
// answer every fingerprint exactly once per run (the runner's local class
// map already dedups); Resolve is called only for claims answered
// VerdictOwn, with the representative's outcome and — when clean — the
// fresh reports it observed. Implementations that cannot reach their
// backing store should fail open: answer VerdictRun and swallow Resolve
// errors, degrading to PR 6's in-process pruning, never to wrong verdicts.
type VerdictSource interface {
	Claim(fingerprint uint64) ClassClaim
	Resolve(fingerprint uint64, clean bool, fresh []Report)
}

// regState is the lifecycle of one registry class.
type regState uint8

const (
	regPending regState = iota // an owner's representative is in flight
	regClean                   // resolved clean; claimants attribute
	regDirty                   // resolved dirty; claimants run inline
)

type registryClass struct {
	state   regState
	owner   string // lease/shard that holds the pending claim
	reports []Report
}

// attributeDirtyForTest is a deliberate soundness bug for the mutation
// battery: treat dirty resolutions as clean, attributing verdicts from
// poisoned representatives (internal/fuzzgen proves the differential
// battery catches it).
var attributeDirtyForTest = false

// SetAttributeDirtyVerdictsForTest toggles the seeded
// attribution-from-poisoned-representative mutant. Tests only.
func SetAttributeDirtyVerdictsForTest(on bool) { attributeDirtyForTest = on }

// ClassRegistry is the per-campaign cross-shard class table: the -serve
// daemon holds one per campaign, keyed by crash-state fingerprint, and the
// in-process benchmarks share one across shard runs. The first claimant of
// an unknown fingerprint becomes its owner; everyone else waits out the
// pending window (VerdictRun — claimants never block) or attributes the
// sticky clean/dirty resolution. Owners are released when their lease dies
// so an expired shard's half-run representative can be re-claimed.
type ClassRegistry struct {
	mu         sync.Mutex
	classes    map[uint64]*registryClass
	attributed int // claims answered VerdictClean
}

// NewClassRegistry returns an empty registry.
func NewClassRegistry() *ClassRegistry {
	return &ClassRegistry{classes: make(map[uint64]*registryClass)}
}

// Claim files a fingerprint claim for owner. See ClassVerdict for the
// answer semantics.
func (g *ClassRegistry) Claim(owner string, fingerprint uint64) ClassClaim {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.classes[fingerprint]
	if c == nil {
		g.classes[fingerprint] = &registryClass{state: regPending, owner: owner}
		return ClassClaim{Verdict: VerdictOwn}
	}
	switch c.state {
	case regClean:
		g.attributed++
		return ClassClaim{Verdict: VerdictClean}
	default: // regPending, regDirty
		return ClassClaim{Verdict: VerdictRun}
	}
}

// Resolve records owner's representative outcome, reporting whether the
// resolve landed as a clean class (so the daemon knows to persist it).
// Only the pending owner may resolve — a late resolve from an expired
// lease (whose class was released and possibly re-claimed) is dropped, so
// a zombie shard can never attribute. Clean and dirty are both sticky.
func (g *ClassRegistry) Resolve(owner string, fingerprint uint64, clean bool, fresh []Report) bool {
	if attributeDirtyForTest {
		clean = true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.classes[fingerprint]
	if c == nil || c.state != regPending || c.owner != owner {
		return false
	}
	c.owner = ""
	if clean {
		c.state = regClean
		c.reports = append([]Report(nil), fresh...)
		return true
	}
	c.state = regDirty
	return false
}

// SeedClean installs a cached clean verdict into owner's pending claim —
// the daemon calls it when the on-disk cross-campaign cache already holds
// the class, converting the just-granted ownership into a resolved class
// before the owner runs anything.
func (g *ClassRegistry) SeedClean(owner string, fingerprint uint64, reports []Report) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.classes[fingerprint]
	if c == nil || c.state != regPending || c.owner != owner {
		return
	}
	c.owner = ""
	c.state = regClean
	c.reports = append([]Report(nil), reports...)
}

// ReleaseOwner drops every pending claim held by owner, so the classes an
// expired or finished lease never resolved can be claimed afresh.
func (g *ClassRegistry) ReleaseOwner(owner string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for fp, c := range g.classes {
		if c.state == regPending && c.owner == owner {
			delete(g.classes, fp)
		}
	}
}

// Reports returns the clean class's cached reports, if resolved clean.
func (g *ClassRegistry) Reports(fingerprint uint64) ([]Report, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.classes[fingerprint]
	if c == nil || c.state != regClean {
		return nil, false
	}
	return append([]Report(nil), c.reports...), true
}

// Stats reports the number of known classes and the number of claims
// answered with an attributed clean verdict (the /status counters).
func (g *ClassRegistry) Stats() (classes, attributed int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.classes), g.attributed
}

// Bind adapts the registry to a per-run VerdictSource under a fixed owner
// name (in-process multi-shard runs; the daemon speaks to the registry
// directly with lease IDs as owners).
func (g *ClassRegistry) Bind(owner string) VerdictSource {
	return &boundRegistry{g: g, owner: owner}
}

type boundRegistry struct {
	g     *ClassRegistry
	owner string
}

func (b *boundRegistry) Claim(fingerprint uint64) ClassClaim {
	return b.g.Claim(b.owner, fingerprint)
}

func (b *boundRegistry) Resolve(fingerprint uint64, clean bool, fresh []Report) {
	b.g.Resolve(b.owner, fingerprint, clean, fresh)
}
