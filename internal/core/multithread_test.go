package core

import (
	"sync"
	"testing"

	"github.com/pmemgo/xfdetector/internal/trace"
)

// TestMultithreadedTracing exercises the §7 claim scoped the way the paper
// scopes it: concurrent mutator threads performing *independent* PM
// operations are traced safely (the frontend "is thread-safe by using
// thread-local storage and Pin's locking primitives"). Each goroutine gets
// its own disjoint region; the tracer must not lose or corrupt entries.
// Failure injection for collaborative multi-threaded updates is out of
// scope, as in the paper.
func TestMultithreadedTracing(t *testing.T) {
	const (
		threads = 4
		opsEach = 200
		region  = 4096
	)
	target := Target{
		Name: "mt-trace",
		Pre: func(c *Ctx) error {
			p := c.Pool()
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					base := uint64(tid) * region
					for i := 0; i < opsEach; i++ {
						off := base + uint64(i%8)*64
						p.Store64(off, uint64(tid)<<32|uint64(i))
						p.CLWB(off, 8)
					}
				}(tid)
			}
			wg.Wait()
			p.SFence()
			return nil
		},
	}
	res, err := Run(Config{Mode: ModeTraceOnly, KeepTrace: true, PoolSize: threads * region}, target)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.PreTrace().Counts()
	if counts[trace.Write] != threads*opsEach {
		t.Errorf("writes traced = %d, want %d", counts[trace.Write], threads*opsEach)
	}
	if counts[trace.CLWB] != threads*opsEach {
		t.Errorf("flushes traced = %d, want %d", counts[trace.CLWB], threads*opsEach)
	}
	// Every traced write must carry a valid in-region address.
	for _, e := range res.PreTrace().Entries() {
		if e.Kind == trace.Write && e.End() > threads*region {
			t.Fatalf("corrupt entry: %v", e)
		}
	}
}
