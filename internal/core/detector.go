package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// Mode selects what the harness does with the tested program. The three
// modes correspond to the three configurations of Fig. 12b.
type Mode uint8

const (
	// ModeDetect runs full XFDetector detection: tracing, failure
	// injection, post-failure execution and backend checking.
	ModeDetect Mode = iota
	// ModeTraceOnly traces PM operations without injecting failures or
	// detecting bugs — the paper's "Pure Pin" configuration.
	ModeTraceOnly
	// ModeOriginal runs the program with no tracing at all.
	ModeOriginal
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeDetect:
		return "detect"
	case ModeTraceOnly:
		return "trace-only"
	case ModeOriginal:
		return "original"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Config parameterizes a detection run.
type Config struct {
	// PoolSize is the PM pool size in bytes (default 1 MiB).
	PoolSize uint64
	// Mode selects detection, tracing-only, or original execution.
	Mode Mode
	// MaxFailurePoints caps the number of injected failure points
	// (0 = unlimited).
	MaxFailurePoints int
	// DisableIPCapture turns off source-location capture; reports then
	// lack file:line information but tracing is cheaper.
	DisableIPCapture bool
	// KeepTrace retains the pre-failure trace in the Result (required by
	// the baseline pre-failure-only checkers).
	KeepTrace bool
	// DisablePerfBugs suppresses performance-bug reports.
	DisablePerfBugs bool
	// DisableFailurePointElision turns off the §5.4 optimization that
	// skips failure points between ordering points with no PM operations
	// in between. For ablation measurements.
	DisableFailurePointElision bool
	// Workers enables parallelized detection (the future work of §6.2.1):
	// with Workers > 1, post-failure executions run on that many worker
	// goroutines, each replaying the pre-failure trace into a private
	// shadow PM. The report set is identical to sequential detection; the
	// Result's PostSeconds then sums worker time, which overlaps the
	// pre-failure stage.
	Workers int
	// MaxPostOps bounds each post-failure execution to this many traced PM
	// operations (0 = a generous default). A recovery or resumption that
	// exceeds the budget is almost certainly looping on corrupted state —
	// the hang-forever analogue of the paper's segmentation-fault scenario
	// — and is reported as a post-failure fault so detection can continue.
	MaxPostOps int
}

// defaultMaxPostOps bounds a post-failure run; real recoveries in the
// evaluated workloads stay well under 10^5 operations.
const defaultMaxPostOps = 1 << 20

// postBudgetExceeded unwinds a runaway post-failure stage; the runner
// converts it into a PostFailureFault report.
type postBudgetExceeded struct{ ops int }

const defaultPoolSize = 1 << 20

// Target is a program under test.
type Target struct {
	// Name identifies the target in results.
	Name string
	// Setup initializes the PM image before testing starts (the
	// artifact's INITSIZE insertions). It is traced but no failure points
	// are injected during it. Optional.
	Setup func(*Ctx) error
	// Pre is the pre-failure stage: the execution into which failure
	// points are injected. Required.
	Pre func(*Ctx) error
	// Post is the post-failure stage: recovery plus resumption, executed
	// once per failure point on a copy of the PM image. Optional (without
	// it only pre-failure performance bugs are detectable).
	Post func(*Ctx) error
	// ExplicitRoI declares that the target calls RoIBegin/RoIEnd itself.
	// When false (the default, used by the micro benchmarks), the entire
	// pre-failure stage is the RoI and the entire post-failure stage is
	// checked (§6.1).
	ExplicitRoI bool
}

// Run executes one detection run of t under cfg.
//
// It returns an error only for harness-level failures (a nil Pre, or Setup
// or Pre failing); bugs in the tested program — including post-failure
// stages that crash — are reported in the Result.
func Run(cfg Config, t Target) (*Result, error) {
	if t.Pre == nil {
		return nil, errors.New("core: target has no pre-failure stage")
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = defaultPoolSize
	}
	r := &runner{cfg: cfg, target: t, reports: newReportSet()}
	r.pool = pmem.New(t.Name, int(cfg.PoolSize))
	r.pool.SetIPCapture(!cfg.DisableIPCapture && cfg.Mode != ModeOriginal)
	if cfg.Mode == ModeDetect && cfg.Workers > 1 {
		// Parallel detection replays the pre-failure trace in the
		// workers, so the trace must be kept.
		r.cfg.KeepTrace = true
	}
	if cfg.Mode != ModeOriginal {
		if r.cfg.KeepTrace {
			r.keptTrace = trace.New()
		}
		r.pool.SetSink((*preSink)(r))
	}
	if cfg.Mode == ModeDetect {
		r.sh = shadow.NewPM(r.pool.Size())
		if !cfg.DisablePerfBugs {
			r.sh.SetPerfBugHandler(r.onPerfBug)
		}
		r.pool.SetFenceHook(r.onOrderingPoint)
		if cfg.Workers > 1 {
			r.engine = newParallelEngine(r, cfg.Workers)
		}
	}
	r.roiActive = !t.ExplicitRoI

	// The engine's workers must be drained on every exit path — including
	// a failing or panicking Setup/Pre — or their goroutines leak.
	engineClosed := false
	closeEngine := func() {
		if r.engine != nil && !engineClosed {
			engineClosed = true
			r.engine.close()
		}
	}
	defer closeEngine()

	start := time.Now()
	ctx := &Ctx{r: r, pool: r.pool, stage: trace.PreFailure, failurePoint: -1}
	if t.Setup != nil {
		r.setupPhase = true
		if err := runStage("setup", t.Setup, ctx); err != nil {
			return nil, err
		}
		r.setupPhase = false
	}
	if err := runStage("pre-failure stage", t.Pre, ctx); err != nil {
		return nil, err
	}
	if r.roiActive {
		r.maybeInjectFinal()
	}
	closeEngine()
	total := time.Since(start)

	preSeconds := (total - r.postTime).Seconds()
	if preSeconds < 0 {
		preSeconds = 0 // parallel workers overlap the pre-failure stage
	}
	res := &Result{
		Target:        t.Name,
		Reports:       r.reports.snapshot(),
		FailurePoints: r.failurePoints,
		PostRuns:      r.postRuns,
		PreEntries:    r.preEntries,
		PostEntries:   r.postEntries,
		BenignReads:   r.benign,
		PostSeconds:   r.postTime.Seconds(),
		PreSeconds:    preSeconds,
	}
	res.trace = r.keptTrace
	return res, nil
}

// runStage runs the Setup or Pre stage, converting panics — the target's
// own or a harness fault unwinding out of the tracing machinery — into
// harness errors. A hostile stage must degrade into an error return, never
// crash the campaign process: only the Post stage was guarded before, so a
// panicking Setup or Pre took down every remaining failure point with it.
func runStage(name string, fn func(*Ctx) error, ctx *Ctx) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("core: %s panicked: %v", name, p)
		}
	}()
	if err := fn(ctx); err != nil {
		return fmt.Errorf("core: %s failed: %w", name, err)
	}
	return nil
}

// runner holds the mutable state of one detection run.
type runner struct {
	cfg     Config
	target  Target
	pool    *pmem.Pool
	sh      *shadow.PM
	reports *reportSet

	keptTrace   *trace.Trace
	preEntries  int
	postEntries int
	benign      uint64

	failurePoints int
	postRuns      int
	opsSinceFP    int
	opsEver       int

	roiActive     bool
	skipFailure   int
	detectionDone bool
	setupPhase    bool

	// engine is non-nil when parallel detection is enabled.
	engine *parallelEngine

	// sinkMu serializes trace recording and failure injection, so
	// multithreaded mutators are traced safely (§7: the paper's frontend
	// is thread-safe via Pin's locking primitives). As in the paper,
	// failure injection assumes threads perform independent operations;
	// collaborative concurrent updates to one PM object are out of scope.
	sinkMu sync.Mutex

	postTime time.Duration
}

func (r *runner) mode() Mode { return r.cfg.Mode }

func (r *runner) maxPostOps() int {
	if r.cfg.MaxPostOps > 0 {
		return r.cfg.MaxPostOps
	}
	return defaultMaxPostOps
}

// preSink receives the pre-failure trace. It is the runner itself, typed
// separately so the Record method does not pollute runner's method set.
type preSink runner

// Record implements pmem.Sink for the pre-failure stage: count, keep,
// replay into the shadow PM, and track operations for the
// elide-empty-failure-interval optimization (§5.4).
func (s *preSink) Record(e trace.Entry) {
	r := (*runner)(s)
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	r.recordLocked(e)
}

// recordLocked is Record's body; callers hold sinkMu.
func (r *runner) recordLocked(e trace.Entry) {
	r.preEntries++
	if r.keptTrace != nil {
		r.keptTrace.Append(e)
	}
	if r.sh != nil {
		r.sh.Apply(e)
	}
	switch e.Kind {
	case trace.Write, trace.NTStore, trace.CLWB, trace.CLFlush,
		trace.TxAdd, trace.TxAlloc, trace.TxFree, trace.AtomicAlloc:
		r.opsSinceFP++
		r.opsEver++
	}
}

func (r *runner) onPerfBug(b shadow.PerfBug) {
	r.reports.add(Report{
		Class:        Performance,
		Addr:         b.Addr,
		Size:         b.Size,
		ReaderIP:     b.IP,
		FailurePoint: -1,
		PerfKind:     b.Kind,
	})
}

// onOrderingPoint runs immediately before each SFence (§4.2): persistent
// data can only become consistent after an ordering point, so checking
// right before each one covers all distinguishable failure states.
func (r *runner) onOrderingPoint() {
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	if r.cfg.Mode != ModeDetect || r.detectionDone || r.setupPhase ||
		!r.roiActive || r.skipFailure > 0 {
		return
	}
	// Optimization (§5.4): no PM operations since the last failure point
	// means the PM state is unchanged; skip the redundant failure point.
	if r.opsSinceFP == 0 && !r.cfg.DisableFailurePointElision {
		return
	}
	if r.cfg.MaxFailurePoints > 0 && r.failurePoints >= r.cfg.MaxFailurePoints {
		r.detectionDone = true
		return
	}
	r.injectFailure()
}

// maybeInjectFinal injects one failure point at the end of the pre-failure
// RoI, testing the quiescent state after the last ordering point.
func (r *runner) maybeInjectFinal() {
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	if r.cfg.Mode != ModeDetect || r.detectionDone || r.opsEver == 0 {
		return
	}
	r.injectFailure()
}

// injectFailureSync is the entry point for on-demand failure points
// (Ctx.AddFailurePoint).
func (r *runner) injectFailureSync() {
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	r.injectFailure()
}

// injectFailure suspends the pre-failure execution, copies the PM image and
// spawns the post-failure stage on the copy (Fig. 8 steps 2–6) — inline in
// sequential mode, on a worker in parallel mode. Callers hold sinkMu, so
// concurrent mutator threads are suspended for the duration, like the
// paper's frontend suspending the program at the failure point.
func (r *runner) injectFailure() {
	fpID := r.failurePoints
	r.failurePoints++
	r.opsSinceFP = 0
	r.recordLocked(trace.Entry{Kind: trace.FailurePoint, Stage: trace.PreFailure})
	if r.target.Post == nil {
		return
	}
	if r.engine != nil {
		r.postRuns++
		pos := r.keptTrace.Len()
		r.engine.submit(fpWork{
			id:       fpID,
			tracePos: pos,
			entries:  r.keptTrace.Slice(0, pos),
			image:    r.pool.Snapshot(),
		})
		return
	}
	start := time.Now()
	r.runPost(fpID)
	r.postTime += time.Since(start)
}

func (r *runner) runPost(fpID int) {
	r.postRuns++
	// The image copy contains ALL updates, including non-persisted ones
	// (footnote 3); the shadow PM is what distinguishes them.
	post := pmem.FromImage(r.pool.Name()+"@post", r.pool.Snapshot())
	post.SetStage(trace.PostFailure)
	post.SetIPCapture(!r.cfg.DisableIPCapture)
	checker := r.sh.BeginPostCheck()
	post.SetSink(&postSink{r: r, checker: checker, fpID: fpID})
	ctx := &Ctx{r: r, pool: post, stage: trace.PostFailure, failurePoint: fpID}
	if r.target.ExplicitRoI {
		// Outside the post-failure RoI nothing is checked; RoIBegin
		// re-enables checking.
		post.EnterSkipDetection()
		ctx.postOutsideRoI = true
	}
	err := r.safePost(ctx)
	r.benign += checker.Benign
	if err != nil {
		r.reports.add(Report{
			Class:        PostFailureFault,
			FailurePoint: fpID,
			Message:      err.Error(),
		})
	}
}

// safePost runs the post-failure stage, converting panics into
// post-failure faults: a crashing recovery (the paper's segmentation-fault
// scenario in Fig. 1, or its Bug 4 failed pool open) is itself an
// observable cross-failure bug, as is one that spins past its operation
// budget.
func (r *runner) safePost(ctx *Ctx) (err error) {
	defer func() {
		if p := recover(); p != nil {
			switch v := p.(type) {
			case terminationSignal:
				return
			case postBudgetExceeded:
				err = fmt.Errorf("post-failure stage exceeded %d PM operations (likely an infinite loop on inconsistent state)", v.ops)
			default:
				err = fmt.Errorf("post-failure stage crashed: %v", p)
			}
		}
	}()
	return r.target.Post(ctx)
}

// postSink receives the post-failure trace of one failure point and checks
// it against the shadow PM.
type postSink struct {
	r       *runner
	checker *shadow.PostChecker
	fpID    int
	ents    int
}

// Record implements pmem.Sink for a post-failure stage. It runs on the
// goroutine executing the post-failure stage, so exceeding the operation
// budget can unwind that stage directly by panicking.
func (s *postSink) Record(e trace.Entry) {
	r := s.r
	s.ents++
	if s.ents > r.maxPostOps() {
		panic(postBudgetExceeded{ops: s.ents})
	}
	r.postEntries++
	switch e.Kind {
	case trace.Write, trace.NTStore:
		// Post-failure writes overwrite the old data; the range becomes
		// consistent for the rest of this post-failure run (§5.4).
		s.checker.OnWrite(e.Addr, e.Size)
	case trace.Read:
		if e.SkipDetection {
			return
		}
		for _, f := range s.checker.OnRead(e.Addr, e.Size) {
			class := CrossFailureRace
			if f.Class == shadow.ClassSemantic {
				class = CrossFailureSemantic
			}
			r.reports.add(Report{
				Class:        class,
				Addr:         f.Addr,
				Size:         f.Size,
				ReaderIP:     e.IP,
				WriterIP:     f.WriterIP,
				FailurePoint: s.fpID,
			})
		}
	case trace.RegCommitVar, trace.RegCommitRange:
		// Recovery code may (re-)register commit variables, e.g. when
		// reopening a pool; registrations are idempotent.
		r.sh.Apply(e)
	}
}
