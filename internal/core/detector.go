package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/record"
	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// Mode selects what the harness does with the tested program. The three
// modes correspond to the three configurations of Fig. 12b.
type Mode uint8

const (
	// ModeDetect runs full XFDetector detection: tracing, failure
	// injection, post-failure execution and backend checking.
	ModeDetect Mode = iota
	// ModeTraceOnly traces PM operations without injecting failures or
	// detecting bugs — the paper's "Pure Pin" configuration.
	ModeTraceOnly
	// ModeOriginal runs the program with no tracing at all.
	ModeOriginal
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeDetect:
		return "detect"
	case ModeTraceOnly:
		return "trace-only"
	case ModeOriginal:
		return "original"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Config parameterizes a detection run.
type Config struct {
	// PoolSize is the PM pool size in bytes (default 1 MiB).
	PoolSize uint64
	// Backend constructs the campaign's root pool (nil = the in-memory
	// default, pmem.MemBackend). With pmem.FileBackend the pool is mapped
	// onto an on-disk file and dirtied pages are written back in coalesced
	// msync ranges at every ordering point and failure-point snapshot
	// (Result.MsyncRanges/MsyncPages/MsyncSkipped); a creation failure — a
	// pool-file collision, a locked file, an injected extend fault — fails
	// the run with an error before any tracing starts. Post-failure pools
	// are copy-on-write views either way and never touch the file.
	Backend pmem.Backend
	// Mode selects detection, tracing-only, or original execution.
	Mode Mode
	// MaxFailurePoints caps the number of injected failure points
	// (0 = unlimited).
	MaxFailurePoints int
	// DisableIPCapture turns off source-location capture; reports then
	// lack file:line information but tracing is cheaper.
	DisableIPCapture bool
	// KeepTrace retains the pre-failure trace in the Result (required by
	// the baseline pre-failure-only checkers).
	KeepTrace bool
	// DisablePerfBugs suppresses performance-bug reports.
	DisablePerfBugs bool
	// DisableFailurePointElision turns off the §5.4 optimization that
	// skips failure points between ordering points with no PM operations
	// in between. For ablation measurements.
	DisableFailurePointElision bool
	// DisableIncrementalSnapshots turns off delta snapshots and
	// copy-on-write post-failure pools: every failure point then performs
	// the original two full O(PoolSize) image copies. For ablation
	// measurements; the report set is identical either way.
	DisableIncrementalSnapshots bool
	// DenseShadow switches the detection backend to the dense
	// representation: full-pool-size per-byte shadow arrays, per-byte FSM
	// transitions, and worker forks that deep-copy the whole table,
	// instead of the sparse paged shadow with range-batched transitions
	// and copy-on-write forks. For ablation measurements; the report set
	// is identical either way.
	DenseShadow bool
	// DisablePruning turns off crash-state pruning. By default the detector
	// fingerprints the shadow state at each failure point
	// (shadow.CrashFingerprint), groups failure points whose crash states
	// are indistinguishable to the post-failure checker into classes, runs
	// post-failure detection once per class, and attributes the clean
	// verdict to the remaining members (Result.PrunedFailurePoints /
	// Result.CrashStateClasses). A class whose representative reports
	// anything — a post-failure fault, an abandonment, a cancellation — is
	// poisoned and every member runs, so value-bearing outcomes are never
	// attributed across members; the deduplicated report-key set is
	// identical with and without pruning. For ablation measurements
	// (xfdetector -no-prune).
	DisablePruning bool
	// Workers enables parallelized detection (the future work of §6.2.1):
	// with Workers > 1, post-failure executions run on that many worker
	// goroutines, each checking against a copy-on-write fork of the
	// canonical shadow PM captured at its failure point. The report set is
	// identical to sequential detection; the Result's PostSeconds then
	// sums worker time, which overlaps the pre-failure stage.
	Workers int
	// MaxPostOps bounds each post-failure execution to this many traced PM
	// operations (0 = a generous default). A recovery or resumption that
	// exceeds the budget is almost certainly looping on corrupted state —
	// the hang-forever analogue of the paper's segmentation-fault scenario
	// — and is reported as a post-failure fault so detection can continue.
	MaxPostOps int
	// PostRunTimeout bounds each post-failure execution's wall-clock time
	// (0 = none). It covers what MaxPostOps cannot: a post-failure stage
	// spinning without touching PM at all. On expiry the post-run goroutine
	// is abandoned — it unwinds at its next PM operation, or when it polls
	// Ctx.Abandoned — the fault is reported, and Result.AbandonedPostRuns
	// is incremented. With a timeout set, each post-run executes on its own
	// goroutine.
	PostRunTimeout time.Duration
	// FaultHooks injects deterministic harness-internal faults (failing
	// image copies, failing trace sinks) into the run's pools, for testing
	// the degradation paths. A post-run tripping a harness fault is retried
	// once and then quarantined (Result.SkippedFailurePoints); a harness
	// fault in the pre-failure stage fails the run with an error.
	FaultHooks *pmem.FaultHooks
	// CompletedFailurePoints marks failure points whose post-runs completed
	// in a previous campaign (crash-safe resume): they are injected and
	// counted but their post-failure executions are skipped, with
	// Result.ResumedFailurePoints accounting. Combine with SeedReports from
	// the same checkpoint, and identical Config/Target, so the resumed
	// campaign converges to the identical deduplicated report set.
	CompletedFailurePoints map[int]bool
	// SeedReports pre-loads reports from a checkpoint into the
	// deduplication set before the run starts.
	SeedReports []Report
	// OnPostRunComplete, if set, is called after the post-run of each
	// failure point completes (including budget-exceeded and abandoned
	// runs, which are deterministic, but not quarantined or cancelled ones,
	// which a resumed campaign must re-execute) with the failure point's
	// id, its crash-state fingerprint (zero when pruning is disabled), and
	// the reports that post-run newly added. Calls are serialized but may
	// come from worker goroutines in parallel mode.
	OnPostRunComplete func(failurePoint int, fingerprint uint64, fresh []Report)
	// Verdicts, if set, shares crash-state class verdicts beyond this
	// process: the runner claims each class before running its local
	// representative and publishes the representative's outcome back (see
	// VerdictSource). Attributed points land in
	// Result.CrossShardPrunedFailurePoints (a shard elsewhere resolved the
	// class during this campaign) or Result.CacheHitFailurePoints (a
	// previous campaign's cached verdict). Requires pruning (ignored under
	// DisablePruning or outside ModeDetect).
	Verdicts VerdictSource
	// ShardCount/ShardIndex partition a campaign's failure points across
	// cooperating processes: shard i executes the post-run of failure
	// point fp iff fp % ShardCount == ShardIndex. Every shard traces the
	// identical (deterministic) pre-failure execution and injects and
	// counts every failure point, so failure-point numbering agrees across
	// shards, each shard's report set is a sound subset of the
	// single-process result, and the union over all shards converges to
	// it. Points owned by other shards are accounted in
	// Result.OtherShardFailurePoints — resumed elsewhere, like
	// CompletedFailurePoints, not degradation. ShardCount 0 or 1 disables
	// sharding.
	ShardCount int
	// ShardIndex is this process's shard in [0, ShardCount).
	ShardIndex int
	// Record, if set, turns the run into a recording pass: the pre-failure
	// stage executes once with the post-failure stage forced off (failure
	// points are injected and counted exactly as a real campaign would, but
	// nothing is dispatched), and at each failure point the runner hands
	// the writer the trace position, the crash-state fingerprint, and the
	// pool pages dirtied since the previous point; the writer checkpoints
	// the serialized shadow periodically and Run finalizes the artifact.
	// Requires ModeDetect, the sparse shadow, and a memory-backed pool; a
	// cancelled or degraded recording fails with an error rather than
	// producing a short artifact.
	Record *record.Writer
	// Replay, if set, runs the frontend from a recorded artifact instead
	// of executing Target.Setup/Target.Pre: trace entries replay into the
	// shadow, recorded failure-point markers dispatch post-runs exactly as
	// live injection would (same sharding, resume, pruning, and verdict
	// semantics), and the pool image advances by the artifact's page
	// deltas. When pruning is on and the shard's first owned, uncovered
	// failure point lies past an engine checkpoint, the replay jumps to
	// the nearest checkpoint at or below it — restoring the serialized
	// shadow and the composed pool image — and replays only the trace
	// delta; every replayed dispatch first verifies the recorded
	// crash-state fingerprint against the replayed shadow and fails the
	// run on a mismatch (a stale or corrupt checkpoint must never skew
	// detection silently). Requires ModeDetect and a pool size matching
	// the artifact's.
	Replay *record.Artifact
}

// defaultMaxPostOps bounds a post-failure run; real recoveries in the
// evaluated workloads stay well under 10^5 operations.
const defaultMaxPostOps = 1 << 20

// postBudgetExceeded unwinds a runaway post-failure stage; the runner
// converts it into a PostFailureFault report.
type postBudgetExceeded struct{ ops int }

const defaultPoolSize = 1 << 20

// Target is a program under test.
type Target struct {
	// Name identifies the target in results.
	Name string
	// Setup initializes the PM image before testing starts (the
	// artifact's INITSIZE insertions). It is traced but no failure points
	// are injected during it. Optional.
	Setup func(*Ctx) error
	// Pre is the pre-failure stage: the execution into which failure
	// points are injected. Required.
	Pre func(*Ctx) error
	// Post is the post-failure stage: recovery plus resumption, executed
	// once per failure point on a copy of the PM image. Optional (without
	// it only pre-failure performance bugs are detectable).
	Post func(*Ctx) error
	// ExplicitRoI declares that the target calls RoIBegin/RoIEnd itself.
	// When false (the default, used by the micro benchmarks), the entire
	// pre-failure stage is the RoI and the entire post-failure stage is
	// checked (§6.1).
	ExplicitRoI bool
}

// Run executes one detection run of t under cfg.
//
// It returns an error only for harness-level failures (a nil Pre, or Setup
// or Pre failing); bugs in the tested program — including post-failure
// stages that crash — are reported in the Result.
func Run(cfg Config, t Target) (*Result, error) {
	return RunContext(context.Background(), cfg, t)
}

// RunContext is Run with cooperative cancellation. Cancellation is checked
// at failure-point boundaries: once ctx is done, no further failure points
// are injected (each elided injection counts into
// Result.SkippedFailurePoints) and, when PostRunTimeout is set, the
// in-flight post-run is abandoned. The pre-failure stage itself runs to
// completion — it is the target's code — so a cancelled run still returns a
// sound partial Result, marked Incomplete.
func RunContext(ctx context.Context, cfg Config, t Target) (*Result, error) {
	if t.Pre == nil {
		return nil, errors.New("core: target has no pre-failure stage")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.ShardCount < 0 {
		return nil, fmt.Errorf("core: negative ShardCount %d", cfg.ShardCount)
	}
	if cfg.ShardCount > 1 && (cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount) {
		return nil, fmt.Errorf("core: ShardIndex %d outside [0, %d)", cfg.ShardIndex, cfg.ShardCount)
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = defaultPoolSize
	}
	if cfg.Record != nil && cfg.Replay != nil {
		return nil, errors.New("core: Record and Replay are mutually exclusive")
	}
	if cfg.Record != nil {
		if cfg.Mode != ModeDetect {
			return nil, errors.New("core: recording requires detect mode")
		}
		if cfg.DenseShadow {
			return nil, errors.New("core: recording requires the sparse shadow (dense shadow state has no checkpoint form)")
		}
		// A recording pass injects and numbers failure points exactly like
		// a live campaign but dispatches nothing: the artifact stands in
		// for the pre-failure execution of every future shard.
		t.Post = nil
		cfg.KeepTrace = true
	}
	if cfg.Replay != nil {
		if cfg.Mode != ModeDetect {
			return nil, errors.New("core: replaying a recorded campaign requires detect mode")
		}
		if cfg.Replay.PoolSize != cfg.PoolSize {
			return nil, fmt.Errorf("core: recorded artifact has pool size %d, campaign wants %d",
				cfg.Replay.PoolSize, cfg.PoolSize)
		}
	}
	r := &runner{ctx: ctx, cfg: cfg, target: t, reports: newReportSet()}
	for _, rep := range cfg.SeedReports {
		r.reports.add(rep)
	}
	backend := cfg.Backend
	if backend == nil {
		backend = pmem.MemBackend{}
	}
	pool, err := backend.NewPool(t.Name, int(cfg.PoolSize))
	if err != nil {
		return nil, fmt.Errorf("core: creating %s-backed pool: %w", backend, err)
	}
	r.pool = pool
	if cfg.Record != nil && pool.FileBacked() {
		pool.Close()
		return nil, errors.New("core: recording requires a memory-backed pool (the artifact replaces the durable image)")
	}
	r.pool.SetIncrementalSnapshots(!cfg.DisableIncrementalSnapshots)
	r.pool.SetFaultHooks(cfg.FaultHooks)
	r.pool.SetIPCapture(!cfg.DisableIPCapture && cfg.Mode != ModeOriginal)
	if cfg.Mode != ModeOriginal {
		if r.cfg.KeepTrace {
			r.keptTrace = trace.New()
		}
		r.pool.SetSink((*preSink)(r))
	}
	if cfg.Mode == ModeDetect {
		// Workers check against COW forks of this one canonical shadow;
		// parallel mode no longer needs the trace retained for replay.
		if cfg.DenseShadow {
			r.sh = shadow.NewDensePM(r.pool.Size())
		} else {
			r.sh = shadow.NewPM(r.pool.Size())
			if r.pool.FileBacked() {
				// File-backed campaigns run long and bulk-initialize large
				// pools; once a page's lines persist the sparse shadow drops
				// it for a shared singleton (shadow cold-page compaction).
				r.sh.SetColdPageCompaction(true)
			}
		}
		if !cfg.DisablePerfBugs {
			r.sh.SetPerfBugHandler(r.onPerfBug)
		}
		r.pool.SetFenceHook(r.onOrderingPoint)
		if !cfg.DisablePruning {
			r.classes = make(map[uint64]*crashClass)
		}
		if cfg.Workers > 1 {
			r.engine = newParallelEngine(r, cfg.Workers)
		}
	}
	r.roiActive = !t.ExplicitRoI

	// The pool must be closed on every exit path: a file-backed pool holds
	// an advisory lock and two mappings, and Close flushes the tail of the
	// durable image. Deferred before closeEngine so it runs after the
	// workers drain.
	poolClosed := false
	closePool := func() error {
		if poolClosed {
			return nil
		}
		poolClosed = true
		return r.pool.Close()
	}
	defer closePool()

	// The engine's workers must be drained on every exit path — including
	// a failing or panicking Setup/Pre — or their goroutines leak.
	engineClosed := false
	closeEngine := func() {
		if r.engine != nil && !engineClosed {
			engineClosed = true
			r.engine.close()
		}
	}
	defer closeEngine()

	start := time.Now()
	if cfg.Replay != nil {
		if err := r.replayRecorded(); err != nil {
			return nil, err
		}
	} else {
		pre := &Ctx{r: r, pool: r.pool, stage: trace.PreFailure, failurePoint: -1}
		if t.Setup != nil {
			r.setupPhase = true
			if err := runStage("setup", t.Setup, pre); err != nil {
				return nil, err
			}
			r.setupPhase = false
		}
		if err := runStage("pre-failure stage", t.Pre, pre); err != nil {
			return nil, err
		}
		if r.roiActive {
			r.maybeInjectFinal()
		}
	}
	closeEngine()
	if cfg.Record != nil {
		if err := r.finishRecording(); err != nil {
			return nil, err
		}
	}
	total := time.Since(start)

	fileBacked := r.pool.FileBacked()
	if err := closePool(); err != nil {
		// The campaign's observations are sound, but the durable image's
		// tail may be lost; degrade honestly instead of failing the run.
		msg := fmt.Sprintf("pool close: %v", err)
		r.degradeMu.Lock()
		r.harnessFaults = append(r.harnessFaults, msg)
		r.markIncomplete(msg)
		r.degradeMu.Unlock()
	}

	preSeconds := (total - r.postTime).Seconds()
	if preSeconds < 0 {
		preSeconds = 0 // parallel workers overlap the pre-failure stage
	}
	res := &Result{
		Target:               t.Name,
		Reports:              r.reports.snapshot(),
		FailurePoints:        r.failurePoints,
		PostRuns:             r.postRuns,
		PreEntries:           r.preEntries,
		PostEntries:          r.postEntries,
		BenignReads:          r.benign,
		PostSeconds:          r.postTime.Seconds(),
		PreSeconds:           preSeconds,
		Incomplete:           r.incomplete,
		IncompleteReason:     r.incompleteWhy,
		SkippedFailurePoints: r.skippedFPs,
		AbandonedPostRuns:    r.abandonedRuns,
		ResumedFailurePoints: r.resumedFPs,
		HarnessFaults:        r.harnessFaults,
		CrashStateClasses:    r.classesTested,
		PrunedFailurePoints:  r.prunedFPs,

		CrossShardPrunedFailurePoints: r.crossShardFPs,
		CacheHitFailurePoints:         r.cacheHitFPs,
	}
	if cfg.ShardCount > 1 {
		res.ShardCount = cfg.ShardCount
		res.ShardIndex = cfg.ShardIndex
		res.OtherShardFailurePoints = r.otherShardFPs
	}
	if r.sh != nil {
		res.ShadowPeakBytes, res.ShadowPages = r.sh.MemStats()
	}
	res.PoolBackend = backend.String()
	if fileBacked {
		res.MsyncRanges, res.MsyncPages, res.MsyncSkipped = r.pool.FileStats()
	}
	res.trace = r.keptTrace
	return res, nil
}

// runStage runs the Setup or Pre stage, converting panics — the target's
// own or a harness fault unwinding out of the tracing machinery — into
// harness errors. A hostile stage must degrade into an error return, never
// crash the campaign process: only the Post stage was guarded before, so a
// panicking Setup or Pre took down every remaining failure point with it.
func runStage(name string, fn func(*Ctx) error, ctx *Ctx) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("core: %s panicked: %v", name, p)
		}
	}()
	if err := fn(ctx); err != nil {
		return fmt.Errorf("core: %s failed: %w", name, err)
	}
	return nil
}

// runner holds the mutable state of one detection run.
type runner struct {
	ctx     context.Context
	cfg     Config
	target  Target
	pool    *pmem.Pool
	sh      *shadow.PM
	reports *reportSet

	keptTrace   *trace.Trace
	preEntries  int
	postEntries int
	benign      uint64

	failurePoints int
	postRuns      int
	opsSinceFP    int
	opsEver       int

	roiActive     bool
	skipFailure   int
	detectionDone bool
	setupPhase    bool

	// recordErr latches the first artifact-writer failure of a recording
	// pass (replay.go); the run fails with it instead of finalizing a
	// short artifact.
	recordErr error

	// engine is non-nil when parallel detection is enabled.
	engine *parallelEngine

	// pruneMu guards the crash-state pruning state (prune.go): the
	// pre-failure thread files failure points into classes while parallel
	// workers resolve class verdicts.
	pruneMu       sync.Mutex
	classes       map[uint64]*crashClass
	classesTested int
	prunedFPs     int
	crossShardFPs int
	cacheHitFPs   int

	// sinkMu serializes trace recording and failure injection, so
	// multithreaded mutators are traced safely (§7: the paper's frontend
	// is thread-safe via Pin's locking primitives). As in the paper,
	// failure injection assumes threads perform independent operations;
	// collaborative concurrent updates to one PM object are out of scope.
	sinkMu sync.Mutex

	postTime time.Duration

	// degradeMu guards the degradation accounting, which parallel workers
	// and the pre-failure thread update concurrently.
	degradeMu     sync.Mutex
	incomplete    bool
	incompleteWhy string
	skippedFPs    int
	abandonedRuns int
	resumedFPs    int
	otherShardFPs int
	harnessFaults []string

	// cbMu serializes OnPostRunComplete callbacks across workers.
	cbMu sync.Mutex
}

// markIncomplete records the first cause of degradation; callers hold
// degradeMu.
func (r *runner) markIncomplete(why string) {
	if !r.incomplete {
		r.incomplete = true
		r.incompleteWhy = why
	}
}

// noteSkipped accounts one failure point whose post-run was not (fully)
// executed: cancellation, or a quarantine after a failed retry.
func (r *runner) noteSkipped(why string) {
	r.degradeMu.Lock()
	defer r.degradeMu.Unlock()
	r.skippedFPs++
	r.markIncomplete(why)
}

// noteQuarantined accounts a failure point abandoned after a harness fault
// survived its retry.
func (r *runner) noteQuarantined(fpID int, err error) {
	msg := fmt.Sprintf("failure point %d quarantined: %v", fpID, err)
	r.degradeMu.Lock()
	defer r.degradeMu.Unlock()
	r.skippedFPs++
	r.harnessFaults = append(r.harnessFaults, msg)
	r.markIncomplete(msg)
}

// completeFP delivers the checkpoint callback for one completed post-run.
// fpr is the point's crash-state fingerprint (zero when pruning is off).
func (r *runner) completeFP(fpID int, fpr uint64, fresh []Report) {
	if cb := r.cfg.OnPostRunComplete; cb != nil {
		r.cbMu.Lock()
		cb(fpID, fpr, fresh)
		r.cbMu.Unlock()
	}
}

func (r *runner) mode() Mode { return r.cfg.Mode }

func (r *runner) maxPostOps() int {
	if r.cfg.MaxPostOps > 0 {
		return r.cfg.MaxPostOps
	}
	return defaultMaxPostOps
}

// preSink receives the pre-failure trace. It is the runner itself, typed
// separately so the Record method does not pollute runner's method set.
type preSink runner

// Record implements pmem.Sink for the pre-failure stage: count, keep,
// replay into the shadow PM, and track operations for the
// elide-empty-failure-interval optimization (§5.4).
func (s *preSink) Record(e trace.Entry) {
	r := (*runner)(s)
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	r.recordLocked(e)
}

// recordLocked is Record's body; callers hold sinkMu.
func (r *runner) recordLocked(e trace.Entry) {
	r.preEntries++
	if r.keptTrace != nil {
		r.keptTrace.Append(e)
	}
	if r.sh != nil {
		r.sh.Apply(e)
	}
	switch e.Kind {
	case trace.Write, trace.NTStore, trace.CLWB, trace.CLFlush,
		trace.TxAdd, trace.TxAlloc, trace.TxFree, trace.AtomicAlloc:
		r.opsSinceFP++
		r.opsEver++
	}
}

func (r *runner) onPerfBug(b shadow.PerfBug) {
	r.reports.add(Report{
		Class:        Performance,
		Addr:         b.Addr,
		Size:         b.Size,
		ReaderIP:     b.IP,
		FailurePoint: -1,
		PerfKind:     b.Kind,
	})
}

// onOrderingPoint runs immediately before each SFence (§4.2): persistent
// data can only become consistent after an ordering point, so checking
// right before each one covers all distinguishable failure states.
func (r *runner) onOrderingPoint() {
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	if r.cfg.Mode != ModeDetect || r.detectionDone || r.setupPhase ||
		!r.roiActive || r.skipFailure > 0 {
		return
	}
	// Optimization (§5.4): no PM operations since the last failure point
	// means the PM state is unchanged; skip the redundant failure point.
	if r.opsSinceFP == 0 && !r.cfg.DisableFailurePointElision {
		return
	}
	if r.cfg.MaxFailurePoints > 0 && r.failurePoints >= r.cfg.MaxFailurePoints {
		r.detectionDone = true
		return
	}
	r.injectFailure()
}

// maybeInjectFinal injects one failure point at the end of the pre-failure
// RoI, testing the quiescent state after the last ordering point.
func (r *runner) maybeInjectFinal() {
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	if r.cfg.Mode != ModeDetect || r.detectionDone || r.opsEver == 0 {
		return
	}
	r.injectFailure()
}

// injectFailureSync is the entry point for on-demand failure points
// (Ctx.AddFailurePoint).
func (r *runner) injectFailureSync() {
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	r.injectFailure()
}

// injectFailure suspends the pre-failure execution, copies the PM image and
// spawns the post-failure stage on the copy (Fig. 8 steps 2–6) — inline in
// sequential mode, on a worker in parallel mode. Callers hold sinkMu, so
// concurrent mutator threads are suspended for the duration, like the
// paper's frontend suspending the program at the failure point.
func (r *runner) injectFailure() {
	if r.ctx.Err() != nil {
		// Cancellation boundary: the failure point is not injected; count
		// it so the partial result is honest about the campaign's coverage.
		r.opsSinceFP = 0
		r.noteSkipped(fmt.Sprintf("run cancelled: %v", context.Cause(r.ctx)))
		return
	}
	fpID := r.failurePoints
	r.failurePoints++
	r.opsSinceFP = 0
	r.recordLocked(trace.Entry{Kind: trace.FailurePoint, Stage: trace.PreFailure})
	if r.cfg.Record != nil {
		r.recordFailurePoint(fpID)
	}
	r.dispatchFP(fpID)
}

// dispatchFP runs everything that happens at an injected failure point
// after its marker is recorded: shard ownership, checkpoint resume,
// crash-state pruning, and the post-run itself. It is shared verbatim by
// live injection (injectFailure) and recorded replay
// (replayFailurePoint), so a replayed campaign makes exactly the
// decisions a live one would. Callers hold sinkMu.
func (r *runner) dispatchFP(fpID int) {
	if r.target.Post == nil {
		return
	}
	if r.cfg.ShardCount > 1 && fpID%r.cfg.ShardCount != r.cfg.ShardIndex {
		// Sharded campaign: this failure point's post-run belongs to
		// another shard, which replays the identical pre-failure execution
		// and arrives at the same fpID. Delegated, not degraded.
		r.degradeMu.Lock()
		r.otherShardFPs++
		r.degradeMu.Unlock()
		return
	}
	if r.cfg.CompletedFailurePoints[fpID] {
		// Crash-safe resume: a previous campaign already executed this
		// post-run; its reports arrived via Config.SeedReports.
		r.degradeMu.Lock()
		r.resumedFPs++
		r.degradeMu.Unlock()
		return
	}
	var cls *crashClass
	var fpr uint64
	if r.pruning() {
		var handled bool
		cls, fpr, handled = r.enterClass(fpID)
		if handled {
			return
		}
	}
	if r.engine != nil {
		snap, err := r.snapshotWithRetry()
		if err != nil {
			r.noteQuarantined(fpID, err)
			// The representative never ran; poison the class so its parked
			// members execute instead of waiting forever.
			r.resolveClass(cls, false, nil)
			return
		}
		r.notePostRun()
		// Fork under sinkMu: the pre-failure execution is suspended, so
		// the fork captures exactly the failure point's shadow state.
		r.engine.submit(fpWork{id: fpID, fpr: fpr, fork: r.sh.Fork(), snap: snap, cls: cls})
		return
	}
	start := time.Now()
	r.runPost(fpID, fpr, cls)
	r.postTime += time.Since(start)
}

// snapshotWithRetry copies the PM image, retrying a harness-faulted copy
// once before giving up.
func (r *runner) snapshotWithRetry() (*pmem.Snapshot, error) {
	snap, err := r.pool.SnapshotErr()
	if err == nil {
		return snap, nil
	}
	return r.pool.SnapshotErr()
}

// postOutcome is the result of one post-run attempt.
type postOutcome struct {
	// err is a target-level post failure, reported as a PostFailureFault.
	err error
	// harness is a harness-internal fault; the attempt is void and the
	// caller retries once before quarantining the failure point.
	harness error
	// abandoned marks a run that exceeded PostRunTimeout; cancelled marks
	// one abandoned because the run's context was cancelled.
	abandoned bool
	cancelled bool
	// benign is the checker's benign byte count (zero for void attempts).
	benign uint64
	// ents is the number of trace entries the attempt recorded (zero for
	// void attempts: a harness-faulted attempt is retried in full, so
	// counting its partial entries would double-count them).
	ents int
	// fresh lists the reports this attempt newly added to the global set.
	fresh []Report
}

// classifyPost folds a finished post-stage call into an outcome,
// separating harness-internal faults from target-level ones.
func classifyPost(err error, benign uint64, ents int, fresh []Report) postOutcome {
	var hf *pmem.HarnessFault
	if errors.As(err, &hf) {
		// Reports added before the fault stay in the global set (they are
		// real observations); keep them for checkpointing, but the partial
		// benign/entry statistics of a void attempt are discarded.
		return postOutcome{harness: err, fresh: fresh}
	}
	return postOutcome{err: err, benign: benign, ents: ents, fresh: fresh}
}

// abandonSignal unwinds an abandoned post-run goroutine at its next PM
// operation; the deciding side already accounted the run.
type abandonSignal struct{}

// postGate mediates between an abandoned post-run goroutine and the rest of
// the run. Every sink delivery takes the gate mutex and checks the
// abandoned flag first, so after abandon() returns, the runaway goroutine
// can never again touch the shadow PM, the checker, or the runner — the
// abandoning side may safely continue using them.
type postGate struct {
	mu        sync.Mutex
	abandoned bool
	// ch is closed on abandonment; long-running post stages can select on
	// it (Ctx.Abandoned) to wind down promptly without touching PM.
	ch chan struct{}
}

func newPostGate() *postGate { return &postGate{ch: make(chan struct{})} }

func (g *postGate) abandon() {
	g.mu.Lock()
	if !g.abandoned {
		g.abandoned = true
		close(g.ch)
	}
	g.mu.Unlock()
}

// enter is called at the top of every gated sink delivery; the caller must
// hold the gate for the duration of the delivery (Record defers unlock).
func (g *postGate) enter() {
	g.mu.Lock()
	if g.abandoned {
		g.mu.Unlock()
		panic(abandonSignal{})
	}
}

func (r *runner) runPost(fpID int, fpr uint64, cls *crashClass) {
	r.notePostRun()
	out, ok := r.runAttempts(fpID, func() postOutcome {
		// The image copy contains ALL updates, including non-persisted
		// ones (footnote 3); the shadow PM is what distinguishes them.
		// Sequential mode snapshots per attempt so the fault hook sees one
		// consultation per attempt; the retry's snapshot is cheap — the
		// suspended pre-failure stage dirtied nothing in between.
		snap, err := r.pool.SnapshotErr()
		if err != nil {
			return postOutcome{harness: err}
		}
		return r.attemptPost(fpID, snap, r.sh)
	})
	if !ok {
		r.unspawnPostRun()
		r.resolveClass(cls, false, nil)
		return
	}
	r.benign += out.benign
	r.postEntries += out.ents
	r.finishPost(fpID, fpr, out)
	r.resolveClass(cls, out.clean(), out.fresh)
}

// runAttempts applies the retry-once-then-quarantine policy shared by the
// sequential and parallel paths: a harness-faulted attempt is void and
// retried once; a second fault quarantines the failure point (ok=false).
// Reports a void attempt added before faulting are kept — they are real
// observations — but its entry/benign statistics are discarded.
func (r *runner) runAttempts(fpID int, attempt func() postOutcome) (postOutcome, bool) {
	out := attempt()
	if out.harness != nil {
		prevFresh := out.fresh
		out = attempt() // retry once
		if out.harness != nil {
			r.noteQuarantined(fpID, out.harness)
			return postOutcome{}, false
		}
		out.fresh = append(prevFresh, out.fresh...)
	}
	return out, true
}

// newPostPool spawns the post-failure pool for one attempt: a copy-on-write
// view over the shared snapshot normally, a full flat copy under the
// ablation knob. A retried attempt calls it again, dropping the faulted
// attempt's COW overlay.
func (r *runner) newPostPool(snap *pmem.Snapshot) *pmem.Pool {
	var post *pmem.Pool
	if r.cfg.DisableIncrementalSnapshots {
		post = pmem.FromImage(r.pool.Name()+"@post", snap.Bytes())
	} else {
		post = pmem.FromSnapshot(r.pool.Name()+"@post", snap)
	}
	post.SetFaultHooks(r.cfg.FaultHooks)
	post.SetStage(trace.PostFailure)
	post.SetIPCapture(!r.cfg.DisableIPCapture)
	return post
}

// attemptPost executes one post-failure run for fpID on a view of snap,
// checking it against sh — the run's canonical shadow in sequential mode,
// the failure point's COW fork in parallel mode. It runs inline when no
// deadline is configured, on its own goroutine under PostRunTimeout
// otherwise.
func (r *runner) attemptPost(fpID int, snap *pmem.Snapshot, sh *shadow.PM) postOutcome {
	post := r.newPostPool(snap)
	checker := sh.BeginPostCheck()
	sink := &postSink{r: r, checker: checker, sh: sh, fpID: fpID}
	ctx := &Ctx{r: r, pool: post, stage: trace.PostFailure, failurePoint: fpID}
	if r.target.ExplicitRoI {
		// Outside the post-failure RoI nothing is checked; RoIBegin
		// re-enables checking.
		post.EnterSkipDetection()
		ctx.postOutsideRoI = true
	}
	if r.cfg.PostRunTimeout <= 0 {
		post.SetSink(sink)
		return classifyPost(safePostCall(r.target.Post, ctx), checker.Benign, sink.ents, sink.fresh)
	}
	gate := newPostGate()
	sink.gate = gate
	ctx.gate = gate
	post.SetSink(sink)
	done := make(chan error, 1)
	go func() { done <- safePostCall(r.target.Post, ctx) }()
	return awaitPost(r, gate, done, sink, func(err error) postOutcome {
		return classifyPost(err, checker.Benign, sink.ents, sink.fresh)
	})
}

// awaitPost waits for a timed post-run: completion, deadline expiry, or
// cancellation, whichever comes first. The sink is only read after
// abandon(), when the runaway goroutine can no longer record into it.
func awaitPost(r *runner, gate *postGate, done <-chan error, sink *postSink, classify func(error) postOutcome) postOutcome {
	timer := time.NewTimer(r.cfg.PostRunTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return classify(err)
	case <-timer.C:
		// Prefer a completion racing with the deadline.
		select {
		case err := <-done:
			return classify(err)
		default:
		}
		gate.abandon()
		return postOutcome{abandoned: true, ents: sink.ents, fresh: sink.fresh}
	case <-r.ctx.Done():
		gate.abandon()
		return postOutcome{cancelled: true}
	}
}

// finishPost folds a completed (non-quarantined) post-run outcome into the
// shared result state: fault reports, abandonment accounting, and the
// checkpoint callback. Cancelled runs are counted as skipped and not
// checkpointed, so a resumed campaign re-executes them; deadline-abandoned
// runs are deterministic (the uninterrupted campaign times out the same
// way) and are reported and checkpointed.
func (r *runner) finishPost(fpID int, fpr uint64, out postOutcome) {
	if out.cancelled {
		r.unspawnPostRun()
		r.noteSkipped("run cancelled during a post-failure execution")
		return
	}
	if out.abandoned {
		r.degradeMu.Lock()
		r.abandonedRuns++
		r.degradeMu.Unlock()
		out.err = fmt.Errorf("post-failure stage abandoned after its %v deadline (runaway execution not touching PM)", r.cfg.PostRunTimeout)
	}
	if out.err != nil {
		rep := Report{Class: PostFailureFault, FailurePoint: fpID, Message: out.err.Error()}
		if r.reports.add(rep) {
			out.fresh = append(out.fresh, rep)
		}
	}
	r.completeFP(fpID, fpr, out.fresh)
}

// classifyPostPanic maps a recovered post-stage panic to its error (nil for
// the signals that mean "stop silently").
func classifyPostPanic(p any) error {
	switch v := p.(type) {
	case terminationSignal:
		return nil
	case abandonSignal:
		// The abandoning side already accounted this run; the goroutine
		// just needs to unwind.
		return nil
	case postBudgetExceeded:
		return fmt.Errorf("post-failure stage exceeded %d PM operations (likely an infinite loop on inconsistent state)", v.ops)
	case *pmem.HarnessFault:
		return fmt.Errorf("harness fault in post-failure stage: %w", v)
	default:
		return fmt.Errorf("post-failure stage crashed: %v", p)
	}
}

// postSink receives the post-failure trace of one failure point and checks
// it against the shadow PM. The same sink serves the sequential path and
// the parallel workers; sh is whichever shadow the attempt checks against.
// It counts entries only locally (ents): the attempt's caller folds them
// into the shared statistics iff the attempt completes, so a void
// (harness-faulted) attempt leaks nothing into Result.PostEntries.
type postSink struct {
	r       *runner
	checker *shadow.PostChecker
	sh      *shadow.PM
	fpID    int
	ents    int
	// gate is non-nil on timed post-runs; fresh collects the reports this
	// post-run newly added (for checkpointing).
	gate  *postGate
	fresh []Report
}

// Record implements pmem.Sink for a post-failure stage. It runs on the
// goroutine executing the post-failure stage, so exceeding the operation
// budget can unwind that stage directly by panicking.
func (s *postSink) Record(e trace.Entry) {
	if s.gate != nil {
		s.gate.enter()
		defer s.gate.mu.Unlock()
	}
	s.ents++
	if s.ents > s.r.maxPostOps() {
		panic(postBudgetExceeded{ops: s.ents})
	}
	switch e.Kind {
	case trace.Write, trace.NTStore:
		// Post-failure writes overwrite the old data; the range becomes
		// consistent for the rest of this post-failure run (§5.4).
		s.checker.OnWrite(e.Addr, e.Size)
	case trace.Read:
		if e.SkipDetection {
			return
		}
		for _, f := range s.checker.OnRead(e.Addr, e.Size) {
			class := CrossFailureRace
			if f.Class == shadow.ClassSemantic {
				class = CrossFailureSemantic
			}
			rep := Report{
				Class:        class,
				Addr:         f.Addr,
				Size:         f.Size,
				ReaderIP:     e.IP,
				WriterIP:     f.WriterIP,
				FailurePoint: s.fpID,
			}
			if s.r.reports.add(rep) {
				s.fresh = append(s.fresh, rep)
			}
		}
	case trace.RegCommitVar, trace.RegCommitRange:
		// Recovery code may (re-)register commit variables, e.g. when
		// reopening a pool; registrations are idempotent.
		s.sh.Apply(e)
	}
}
