package vcache

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
)

func mustOpen(t *testing.T, path string) *Cache {
	t.Helper()
	c, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestStoreLookupReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.cache")
	reports := []core.Report{{Class: core.CrossFailureRace, ReaderIP: "r.go:1", WriterIP: "w.go:2", FailurePoint: 3}}

	c := mustOpen(t, path)
	if _, ok := c.Lookup(1, 42); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Store(1, 42, reports); err != nil {
		t.Fatal(err)
	}
	if err := c.Store(1, 42, nil); err != nil {
		t.Fatal(err) // duplicate store is a no-op
	}
	if err := c.Store(1, 43, nil); err != nil {
		t.Fatal(err) // empty report sets are cacheable verdicts too
	}
	got, ok := c.Lookup(1, 42)
	if !ok || len(got) != 1 || got[0].DedupKey() != reports[0].DedupKey() {
		t.Fatalf("Lookup(1,42) = %v, %v", got, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Close()

	// Reopen: verdicts must survive the process.
	c2 := mustOpen(t, path)
	if c2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", c2.Len())
	}
	got, ok = c2.Lookup(1, 42)
	if !ok || len(got) != 1 || got[0].DedupKey() != reports[0].DedupKey() {
		t.Fatalf("reopened Lookup(1,42) = %v, %v", got, ok)
	}
	if _, ok := c2.Lookup(1, 43); !ok {
		t.Fatal("reopened cache lost the empty-report verdict")
	}
}

func TestIdentitySeparatesPrograms(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.cache")
	c := mustOpen(t, path)
	if err := c.Store(Identity("program-a"), 7, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(Identity("program-b"), 7); ok {
		t.Fatal("a different identity shared the verdict")
	}
	if _, ok := c.Lookup(Identity("program-a"), 7); !ok {
		t.Fatal("the storing identity missed its own verdict")
	}
	if Identity("a", "bc") == Identity("ab", "c") {
		t.Fatal("Identity collides under part re-splitting")
	}
}

func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.cache")
	c := mustOpen(t, path)
	if err := c.Store(1, 42, nil); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Simulate a crash mid-append: a torn, unterminated trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":1,"fpr":99,"repo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2 := mustOpen(t, path)
	if c2.Len() != 1 {
		t.Fatalf("Len after torn tail = %d, want 1", c2.Len())
	}
	if _, ok := c2.Lookup(1, 99); ok {
		t.Fatal("torn entry resurrected")
	}
	// The reopened cache must still be appendable past the torn bytes.
	if err := c2.Store(1, 100, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMidFileCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.cache")
	if err := os.WriteFile(path, []byte("garbage\n{\"id\":1,\"fpr\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
}

// TestBindRoundTrip drives the VerdictSource adapter the way a runner
// does: first campaign owns and resolves, second campaign gets cache hits
// with the reports re-seeded; dirty verdicts are never cached.
func TestBindRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.cache")
	c := mustOpen(t, path)
	id := Identity("prog")
	src := c.Bind(id)

	if v := src.Claim(5); v.Verdict != core.VerdictOwn {
		t.Fatalf("cold Claim = %v, want VerdictOwn", v.Verdict)
	}
	rep := core.Report{Class: core.CrossFailureSemantic, ReaderIP: "x.go:9"}
	src.Resolve(5, true, []core.Report{rep})
	src.Resolve(6, false, nil) // dirty: must not be cached

	warm := c.Bind(id)
	v := warm.Claim(5)
	if v.Verdict != core.VerdictCached || len(v.Reports) != 1 || v.Reports[0].DedupKey() != rep.DedupKey() {
		t.Fatalf("warm Claim(5) = %+v, want cached with the resolved report", v)
	}
	if v := warm.Claim(6); v.Verdict != core.VerdictOwn {
		t.Fatalf("warm Claim(6) = %v, want VerdictOwn (dirty verdicts are never cached)", v.Verdict)
	}
}

// TestIgnoreIdentityMutant sanity-checks the seeded stale-cache mutant
// hook itself (the differential battery in internal/fuzzgen proves it is
// caught end to end).
func TestIgnoreIdentityMutant(t *testing.T) {
	SetIgnoreIdentityForTest(true)
	defer SetIgnoreIdentityForTest(false)
	c := mustOpen(t, filepath.Join(t.TempDir(), "verdicts.cache"))
	if err := c.Store(1, 7, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(2, 7); !ok {
		t.Fatal("mutant off? cross-identity lookup should hit under the mutant")
	}
}
