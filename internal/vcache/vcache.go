// Package vcache is the on-disk cross-campaign crash-state verdict cache.
//
// A campaign that resolves a crash-state class cleanly has proven something
// durable: any later campaign of the *identical program* reaching the same
// fingerprint will observe the same post-failure behaviour, so its post-run
// can be skipped and the class's reports re-seeded. The cache persists
// exactly those facts — one JSONL entry per (identity, fingerprint) pair,
// appended and fsynced as classes resolve, torn-tail tolerant on reload —
// and nothing else: dirty verdicts are value-bearing (fault messages quote
// data, abandonments depend on deadlines) and are never cached, so a repeat
// campaign re-executes them.
//
// Identity is the first key component because fingerprints cover only the
// pre-failure state: two programs that differ solely in their post-failure
// stage produce identical fingerprints and must not share verdicts. Callers
// hash every program/config knob that can change the traced execution or
// the post-failure checker into the identity (cmd/xfdetector hashes its
// workload flags; the -serve daemon hashes the campaign argv; the fuzzer
// hashes the program JSON). Over-approximating identity is safe — it only
// costs cache misses.
package vcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"github.com/pmemgo/xfdetector/internal/core"
)

// Identity hashes canonical program/config description strings into a
// cache identity. The parts are length-prefixed so distinct part lists
// never collide by concatenation.
func Identity(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s", len(p), p)
	}
	return h.Sum64()
}

// entry is one cached clean verdict: the JSONL line format. Reports may be
// non-empty — a clean representative can still have observed races or
// semantic bugs, and a cache hit must re-seed them so the warm campaign's
// report set matches the cold one's byte for byte.
type entry struct {
	ID      uint64        `json:"id"`
	FPrint  uint64        `json:"fpr"`
	Reports []core.Report `json:"reports,omitempty"`
}

type key struct{ id, fpr uint64 }

// ignoreIdentityForTest is a deliberate soundness bug for the mutation
// battery: key the cache by fingerprint alone, sharing verdicts across
// different programs (stale-cache-after-program-change). The differential
// battery in internal/fuzzgen proves it is caught.
var ignoreIdentityForTest = false

// SetIgnoreIdentityForTest toggles the seeded stale-cache mutant. Tests
// only.
func SetIgnoreIdentityForTest(on bool) { ignoreIdentityForTest = on }

func makeKey(id, fpr uint64) key {
	if ignoreIdentityForTest {
		id = 0
	}
	return key{id: id, fpr: fpr}
}

// Cache is one open verdict-cache file. Safe for concurrent use; every
// Store is appended and fsynced before it becomes visible to Lookup, so a
// crash mid-campaign loses at most the entry being written.
type Cache struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries map[key][]core.Report
}

// Open loads path (which need not exist) and opens it for appending.
// Like the checkpoint reader, a torn trailing line — the crash window of
// an append — is tolerated and dropped; corruption before the last line is
// an error, not data to silently skip.
func Open(path string) (*Cache, error) {
	c := &Cache{path: path, entries: make(map[key][]core.Report)}
	data, err := os.ReadFile(path)
	fresh := errors.Is(err, os.ErrNotExist)
	if err != nil && !fresh {
		return nil, fmt.Errorf("vcache: reading %s: %w", path, err)
	}
	if len(data) > 0 {
		if err := c.load(data); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vcache: opening %s: %w", path, err)
	}
	if fresh {
		// A freshly created cache file is only durable once its directory
		// entry is: fsync the parent directory, or a crash can leave later
		// fsynced appends pointing into a file that never existed.
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("vcache: syncing parent of %s: %w", path, err)
		}
	}
	c.f = f
	return c, nil
}

// syncDir fsyncs a directory so a just-created entry in it survives a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// load parses the JSONL image, tolerating only a torn final line.
func (c *Cache) load(data []byte) error {
	lines := splitLines(data)
	for i, raw := range lines {
		var e entry
		if err := json.Unmarshal(raw, &e); err != nil {
			if i == len(lines)-1 {
				return nil // torn tail: the entry was never durable
			}
			return fmt.Errorf("vcache: %s line %d: %w", c.path, i+1, err)
		}
		c.entries[makeKey(e.ID, e.FPrint)] = e.Reports
	}
	return nil
}

// splitLines splits on '\n', keeping a non-empty unterminated tail and
// dropping empty lines.
func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// Lookup returns the cached clean verdict's reports for (id, fpr), if any.
func (c *Cache) Lookup(id, fpr uint64) ([]core.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	reports, ok := c.entries[makeKey(id, fpr)]
	if !ok {
		return nil, false
	}
	return append([]core.Report(nil), reports...), true
}

// Store records a clean verdict, appending and fsyncing its entry unless
// the pair is already cached. Write failures are reported but leave the
// in-memory view consistent with the file (the entry is not installed), so
// a full disk degrades to cache misses, never to unreplayable state.
func (c *Cache) Store(id, fpr uint64, reports []core.Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := makeKey(id, fpr)
	if _, ok := c.entries[k]; ok {
		return nil
	}
	line, err := json.Marshal(entry{ID: id, FPrint: fpr, Reports: reports})
	if err != nil {
		return fmt.Errorf("vcache: encoding entry: %w", err)
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("vcache: appending to %s: %w", c.path, err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("vcache: syncing %s: %w", c.path, err)
	}
	c.entries[k] = append([]core.Report(nil), reports...)
	return nil
}

// Len reports the number of cached verdicts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Close closes the backing file; the cache must not be used afterwards.
func (c *Cache) Close() error { return c.f.Close() }

// Bind adapts the cache to a core.VerdictSource for one campaign identity.
// Claim answers VerdictCached for cached classes and VerdictOwn otherwise
// (a standalone campaign has no cross-shard contention — the local class
// map already serializes members); Resolve stores clean verdicts and drops
// dirty ones.
func (c *Cache) Bind(id uint64) core.VerdictSource {
	return &boundCache{c: c, id: id}
}

type boundCache struct {
	c  *Cache
	id uint64
}

func (b *boundCache) Claim(fpr uint64) core.ClassClaim {
	if reports, ok := b.c.Lookup(b.id, fpr); ok {
		return core.ClassClaim{Verdict: core.VerdictCached, Reports: reports}
	}
	return core.ClassClaim{Verdict: core.VerdictOwn}
}

func (b *boundCache) Resolve(fpr uint64, clean bool, fresh []core.Report) {
	if !clean {
		return
	}
	if err := b.c.Store(b.id, fpr, fresh); err != nil {
		fmt.Fprintf(os.Stderr, "xfdetector: %v\n", err)
	}
}
