//go:build linux

package pmem

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func tmpPoolPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.pool")
}

func mustFileBacked(t *testing.T, path string, size int, resume bool, hooks *FaultHooks) *Pool {
	t.Helper()
	p, err := NewFileBacked("file-pool", path, size, resume, hooks)
	if err != nil {
		t.Fatalf("NewFileBacked: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// The file-backed pool must be indistinguishable from the in-memory one
// to everything above it: same image bytes, same snapshots, same
// incremental-snapshot behavior.
func TestFileBackedImageParity(t *testing.T) {
	const size = 3 * PageSize
	mem := New("mem-pool", size)
	fb := mustFileBacked(t, tmpPoolPath(t), size, false, nil)

	ops := func(p *Pool) *Snapshot {
		p.Store64(16, 0xdeadbeef)
		p.Memset(PageSize+5, 0xAA, 300)
		p.CLWB(16, 8)
		p.SFence()
		s1 := p.TakeSnapshot()
		p.Store(2*PageSize, []byte("cross-failure"))
		p.Copy(64, 2*PageSize, 13)
		p.SFence()
		_ = s1
		return p.TakeSnapshot()
	}
	sm, sf := ops(mem), ops(fb)
	if !bytes.Equal(mem.Bytes(), fb.Bytes()) {
		t.Fatal("file-backed image diverged from in-memory image")
	}
	if !bytes.Equal(sm.Bytes(), sf.Bytes()) {
		t.Fatal("file-backed snapshot diverged from in-memory snapshot")
	}
}

// Every SFence is a persist boundary: after it, the pool file holds the
// full image including not-flushed stores (footnote-3 semantics for the
// durable image), and only dirtied pages were written.
func TestFileBackedPersistAtFence(t *testing.T) {
	path := tmpPoolPath(t)
	const size = 4 * PageSize
	p := mustFileBacked(t, path, size, false, nil)

	p.Store64(8, 77)                 // page 0, never flushed
	p.Store(2*PageSize+9, []byte{1}) // page 2
	p.SFence()

	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, p.Bytes()) {
		t.Fatal("pool file does not hold the image at the fence boundary")
	}
	ranges, written, skipped := p.FileStats()
	if ranges != 2 || written != 2 || skipped != 0 {
		t.Fatalf("FileStats = (%d, %d, %d), want 2 ranges, 2 written, 0 skipped", ranges, written, skipped)
	}

	// Re-dirtying a page with identical content must compare-skip.
	p.Store64(8, 77)
	p.SFence()
	_, written, skipped = p.FileStats()
	if written != 2 || skipped != 1 {
		t.Fatalf("after identical rewrite: written %d skipped %d, want 2 and 1", written, skipped)
	}

	// A clean fence persists nothing.
	ranges0, _, _ := p.FileStats()
	p.SFence()
	ranges1, _, _ := p.FileStats()
	if ranges1 != ranges0 {
		t.Fatalf("clean fence msync'd %d ranges", ranges1-ranges0)
	}
}

// Consecutive dirty pages coalesce into one msync range.
func TestFileBackedRangeCoalescing(t *testing.T) {
	p := mustFileBacked(t, tmpPoolPath(t), 8*PageSize, false, nil)
	p.Memset(0, 0x11, 3*PageSize) // pages 0-2: one range
	p.Store8(5*PageSize, 0x22)    // page 5: second range
	p.SFence()
	ranges, written, _ := p.FileStats()
	if ranges != 2 || written != 4 {
		t.Fatalf("FileStats ranges %d written %d, want 2 and 4", ranges, written)
	}
}

// Close performs the final persist: stores after the last fence still
// reach the file.
func TestFileBackedCloseFlushesTail(t *testing.T) {
	path := tmpPoolPath(t)
	p := mustFileBacked(t, path, 2*PageSize, false, nil)
	p.Store(100, []byte("tail past the last fence"))
	want := append([]byte(nil), p.Bytes()...)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Fatal("pool file missing the tail written after the last fence")
	}
}

// A fresh campaign must refuse an existing pool file; -resume reopens it,
// and the deterministic replay writes back nothing the file already holds.
func TestFileBackedResumeSkipsPersistedPages(t *testing.T) {
	path := tmpPoolPath(t)
	const size = 4 * PageSize
	run := func(resume bool) *Pool {
		p := mustFileBacked(t, path, size, resume, nil)
		p.Store64(8, 1234)
		p.Memset(PageSize, 0x7F, PageSize/2)
		p.SFence()
		return p
	}
	p1 := run(false)
	if _, w, _ := p1.FileStats(); w == 0 {
		t.Fatal("first campaign wrote no pages")
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := NewFileBacked("dup", path, size, false, nil); err == nil ||
		!strings.Contains(err.Error(), "-resume") {
		t.Fatalf("fresh campaign over existing pool file: err = %v, want a -resume hint", err)
	}

	p2 := run(true)
	ranges, written, skipped := p2.FileStats()
	if written != 0 {
		t.Fatalf("resumed replay re-msync'd %d already-persisted pages (ranges %d, skipped %d)", written, ranges, skipped)
	}
	if skipped == 0 {
		t.Fatal("resumed replay skipped no pages; compare-skip is not firing")
	}
}

// Resume with a missing file starts fresh, and a size mismatch is a
// campaign-identity error.
func TestFileBackedResumeEdgeCases(t *testing.T) {
	path := tmpPoolPath(t)
	p := mustFileBacked(t, path, 2*PageSize, true, nil) // resume-with-missing: create
	p.Close()
	if _, err := NewFileBacked("wrong-size", path, 4*PageSize, true, nil); err == nil ||
		!strings.Contains(err.Error(), "size") {
		t.Fatalf("size mismatch: err = %v, want size error", err)
	}
}

// Two live pools must not share one pool file: the flock turns the race
// into a clear error.
func TestFileBackedLockCollision(t *testing.T) {
	path := tmpPoolPath(t)
	p := mustFileBacked(t, path, PageSize, false, nil)
	defer p.Close()
	if _, err := NewFileBacked("intruder", path, PageSize, true, nil); err == nil ||
		!strings.Contains(err.Error(), "locked") {
		t.Fatalf("second open of a live pool file: err = %v, want lock error", err)
	}
}

// An extend-time disk-full fault fails pool creation with a pool-extend
// HarnessFault and leaves no half-made file behind.
func TestFileBackedExtendFault(t *testing.T) {
	path := tmpPoolPath(t)
	hooks := &FaultHooks{Extend: func(size uint64) error { return syscall.ENOSPC }}
	_, err := NewFileBacked("nospace", path, PageSize, false, hooks)
	var hf *HarnessFault
	if !errors.As(err, &hf) || hf.Op != "pool-extend" || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want pool-extend HarnessFault wrapping ENOSPC", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed creation left %s behind (stat err %v)", path, err)
	}
}

// The three msync-time fault classes: each fails the persist with its
// HarnessFault op, leaves the unpersisted pages dirty, and a retry (the
// next SnapshotErr) completes the writeback so no data is lost.
func TestFileBackedDiskFaultClasses(t *testing.T) {
	cases := []struct {
		spec, op string
	}{
		{"disk-full:0", "msync"},
		{"short-msync:0", "short-msync"},
		{"torn-mmap:0", "torn-mmap"},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			path := tmpPoolPath(t)
			hooks, err := DiskFaultHooksFromSpec(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			p := mustFileBacked(t, path, 2*PageSize, false, hooks)
			p.Store(10, []byte("must survive the fault"))
			p.SFence() // consult 0 faults; error stashed as pending

			// Attempt 1 surfaces the stashed fault; attempt 2 re-runs the
			// writeback, whose consult 1 also faults (the spec arms N and
			// N+1); attempt 3 succeeds — mirroring the frontend's
			// retry-once-then-quarantine, which would quarantine after 2.
			for attempt := 0; attempt < 2; attempt++ {
				_, err := p.SnapshotErr()
				var hf *HarnessFault
				if !errors.As(err, &hf) || hf.Op != tc.op {
					t.Fatalf("attempt %d: err = %v, want HarnessFault op %q", attempt, err, tc.op)
				}
			}
			if _, err := p.SnapshotErr(); err != nil {
				t.Fatalf("post-fault snapshot still failing: %v", err)
			}
			onDisk, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(onDisk, p.Bytes()) {
				t.Fatal("retried persist lost data")
			}
		})
	}
}

// A short msync persists exactly the prefix the hook allowed: the file
// must hold the prefix and the stale tail until the retry.
func TestFileBackedShortMsyncPrefix(t *testing.T) {
	path := tmpPoolPath(t)
	fail := true
	hooks := &FaultHooks{ShortMsync: func(addr, size uint64) (uint64, error) {
		if fail {
			fail = false
			return PageSize + 16, errors.New("short write")
		}
		return 0, nil
	}}
	p := mustFileBacked(t, path, 4*PageSize, false, hooks)
	p.Memset(0, 0xBB, 2*PageSize) // pages 0-1, one range
	p.SFence()                    // persists page 0 fully, 16 bytes of page 1

	onDisk, _ := os.ReadFile(path)
	want := make([]byte, 4*PageSize)
	for i := 0; i < PageSize+16; i++ {
		want[i] = 0xBB
	}
	if !bytes.Equal(onDisk, want) {
		t.Fatal("short msync did not persist exactly the allowed prefix")
	}

	// The tail page is still dirty: the stashed fault surfaces, then the
	// retry completes it.
	if _, err := p.SnapshotErr(); err == nil {
		t.Fatal("stashed short-msync fault never surfaced")
	}
	if _, err := p.SnapshotErr(); err != nil {
		t.Fatal(err)
	}
	onDisk, _ = os.ReadFile(path)
	if !bytes.Equal(onDisk, p.Bytes()) {
		t.Fatal("retry did not persist the lost tail")
	}
}

// The seeded mutant loses range tails silently: no error, bits cleared,
// file missing data. This is what the fuzzer's file-backed digest check
// must catch (internal/fuzzgen disk mutation test).
func TestShortMsyncMutantLosesTailSilently(t *testing.T) {
	SetShortMsyncForTest(true)
	defer SetShortMsyncForTest(false)
	path := tmpPoolPath(t)
	p := mustFileBacked(t, path, PageSize, false, nil)
	p.Memset(0, 0xCD, 512)
	p.SFence()
	if _, err := p.SnapshotErr(); err != nil {
		t.Fatalf("the mutant must be silent, got %v", err)
	}
	onDisk, _ := os.ReadFile(path)
	if !bytes.Equal(onDisk[:shortMsyncKeep], p.Bytes()[:shortMsyncKeep]) {
		t.Fatal("mutant lost even the prefix")
	}
	if bytes.Equal(onDisk, p.Bytes()) {
		t.Fatal("mutant persisted everything; it has no teeth")
	}
	// And the bits are gone: a later fence does not heal the tail.
	p.SFence()
	onDisk2, _ := os.ReadFile(path)
	if !bytes.Equal(onDisk, onDisk2) {
		t.Fatal("mutant left the tail dirty; silent loss requires cleared bits")
	}
}

// DiskFaultHooksFromSpec rejects malformed specs.
func TestDiskFaultSpecParsing(t *testing.T) {
	for _, bad := range []string{"", "short-msync", "short-msync:x", "meteor-strike:0"} {
		if _, err := DiskFaultHooksFromSpec(bad); err == nil {
			t.Errorf("spec %q: expected parse error", bad)
		}
	}
	if h, err := DiskFaultHooksFromSpec("disk-full:3"); err != nil || h.Msync == nil {
		t.Fatalf("disk-full:3: hooks %+v err %v", h, err)
	}
}

// In-memory pools are unaffected by the file API: Close is a no-op and
// FileStats are zero.
func TestMemPoolFileAPINoops(t *testing.T) {
	p := New("plain", PageSize)
	p.Store8(0, 1)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if r, w, s := p.FileStats(); r|w|s != 0 {
		t.Fatal("in-memory pool has file stats")
	}
	if p.FileBacked() {
		t.Fatal("in-memory pool claims to be file-backed")
	}
}
