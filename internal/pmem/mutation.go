package pmem

// Soundness-mutation test hooks for the snapshot layer.
//
// The incremental-snapshot and copy-on-write machinery (snapshot.go) must be
// invisible to detection: the paper's correctness argument assumes every
// post-failure execution starts from the exact PM image at the failure
// point (footnote 3). The differential fuzzer and the workload equivalence
// tables validate that with the optimization on vs. off — and, to prove
// those suites can actually catch a snapshot-soundness regression rather
// than co-evolving with it, the mutation tests flip these switches:
//
//   - staleDirtyForTest stops the store paths from marking dirty pages, so
//     an incremental snapshot silently reuses stale base pages: the classic
//     missed-invalidation bug of any delta-copy scheme.
//
//   - tornCOWForTest corrupts every page a COW view privatizes, the
//     analogue of a torn or miscopied page on first write: the triggering
//     store still lands on top, so only the bytes the copy was supposed to
//     carry over are wrong.
//
//   - shortMsyncForTest makes every dirty-range writeback of a file-backed
//     pool (file.go) silently persist only its first shortMsyncKeep bytes
//     while clearing the range's dirty bits anyway: the classic
//     short-write-whose-error-was-dropped bug of any writeback scheme. No
//     error is raised, so nothing quarantines — only the file-backed
//     differential-fuzzer config, which digests the backing file against
//     the oracle's final image, can catch it.
//
// With any switch on, the suites must report mismatches; if they ever
// stop doing so, they have lost their teeth. Production code must never set
// these; they exist solely for the mutation tests (internal/fuzzgen,
// internal/bench).
var (
	staleDirtyForTest bool
	tornCOWForTest    bool
	shortMsyncForTest bool
)

// shortMsyncKeep is the per-range prefix the seeded short-msync mutant
// persists. 256 cuts inside the fuzz programs' data region — their stores
// land in [0x000, 0x300) of a single-page pool (fuzzgen/gen.go) — so a
// page-granular cut could never truncate mid-data and the mutant would be
// invisible to the fuzzer.
const shortMsyncKeep = 256

// SetStaleDirtyForTest toggles the deliberate dirty-bitmap staleness.
// Callers must not toggle it while a detection run is in flight.
func SetStaleDirtyForTest(on bool) { staleDirtyForTest = on }

// SetTornCOWForTest toggles the deliberate COW-page corruption. Callers
// must not toggle it while a detection run is in flight.
func SetTornCOWForTest(on bool) { tornCOWForTest = on }

// SetShortMsyncForTest toggles the deliberate silent short writeback on
// file-backed pools. Callers must not toggle it while a detection run is
// in flight.
func SetShortMsyncForTest(on bool) { shortMsyncForTest = on }

// tearPage corrupts a freshly privatized page, before the write that
// triggered the privatization lands.
func tearPage(pg []byte) {
	for i := range pg {
		pg[i] ^= 0xFF
	}
}
