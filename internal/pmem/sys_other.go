//go:build !linux

package pmem

import (
	"errors"
	"os"
)

// Stub platform layer: file-backed pools need mmap/msync/flock and are
// only implemented for linux (sys_linux.go). NewFileBacked checks
// fileBackendSupported first, so none of these stubs is ever reached.

const fileBackendSupported = false

var errUnsupported = errors.New("pmem: file-backed pools are only supported on linux")

var errNoSpace error = errUnsupported

func mapShared(*os.File, int) ([]byte, error) { return nil, errUnsupported }
func mapAnon(int) ([]byte, error)             { return nil, errUnsupported }
func unmap([]byte) error                      { return nil }
func lockFile(*os.File) error                 { return errUnsupported }
func msyncRange([]byte) error                 { return errUnsupported }
