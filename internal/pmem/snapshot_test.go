package pmem

import (
	"bytes"
	"testing"

	"github.com/pmemgo/xfdetector/internal/trace"
)

// pageBase returns the address of page pg's first byte in s, for
// page-sharing assertions.
func pageBase(s *Snapshot, pg int) *byte { return &s.pages[pg][0] }

func TestIncrementalSnapshotSharesCleanPages(t *testing.T) {
	p := New("inc", 4*PageSize)
	p.Store64(0, 1)
	p.Store64(3*PageSize, 2)
	s1 := p.TakeSnapshot()
	if !bytes.Equal(s1.Bytes(), p.Snapshot()) {
		t.Fatal("first snapshot does not match the image")
	}

	p.Store64(PageSize+8, 3) // dirty page 1 only
	s2 := p.TakeSnapshot()
	if !bytes.Equal(s2.Bytes(), p.Snapshot()) {
		t.Fatal("second snapshot does not match the image")
	}
	for pg := 0; pg < 4; pg++ {
		shared := pageBase(s1, pg) == pageBase(s2, pg)
		if pg == 1 && shared {
			t.Fatalf("dirty page %d was not recloned", pg)
		}
		if pg != 1 && !shared {
			t.Fatalf("clean page %d was recloned instead of shared", pg)
		}
	}

	// A snapshot with nothing dirtied in between is all pointer sharing.
	s3 := p.TakeSnapshot()
	for pg := 0; pg < 4; pg++ {
		if pageBase(s2, pg) != pageBase(s3, pg) {
			t.Fatalf("no-delta snapshot recloned page %d", pg)
		}
	}
}

func TestSnapshotImmutableAfterRootWrites(t *testing.T) {
	p := New("immutable", 2*PageSize)
	p.Store64(16, 0xAA)
	s := p.TakeSnapshot()
	want := s.Bytes()
	p.Store64(16, 0xBB)
	p.Memset(PageSize, 0x7, 64)
	if !bytes.Equal(s.Bytes(), want) {
		t.Fatal("root-pool writes mutated a published snapshot")
	}
}

func TestSnapshotAblationKnob(t *testing.T) {
	p := New("ablation", 2*PageSize)
	p.SetIncrementalSnapshots(false)
	p.Store64(0, 1)
	s1 := p.TakeSnapshot()
	s2 := p.TakeSnapshot() // nothing dirtied in between
	for pg := 0; pg < 2; pg++ {
		if pageBase(s1, pg) == pageBase(s2, pg) {
			t.Fatalf("ablation snapshot shared page %d with its predecessor", pg)
		}
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("ablation snapshots differ in content")
	}
}

func TestFromSnapshotCopyOnWrite(t *testing.T) {
	p := New("root", 4*PageSize)
	p.Store64(8, 0x11)
	p.Store64(PageSize, 0x22)
	s := p.TakeSnapshot()

	v1 := FromSnapshot("view1", s)
	v2 := FromSnapshot("view2", s)
	if v1.Load64(8) != 0x11 || v1.Load64(PageSize) != 0x22 {
		t.Fatal("view does not reflect the snapshot")
	}

	v1.Store64(8, 0x99) // privatizes page 0 of view 1 only
	if v1.Load64(8) != 0x99 {
		t.Fatal("view write not visible to the view")
	}
	if v2.Load64(8) != 0x11 {
		t.Fatal("one view's write leaked into a sibling view")
	}
	if s.Bytes()[8] != 0x11 {
		t.Fatal("view write mutated the shared snapshot")
	}
	if !bytes.Equal(v1.Bytes()[PageSize:], s.Bytes()[PageSize:]) {
		t.Fatal("unwritten pages of the view diverged from the snapshot")
	}
}

func TestCOWViewCrossPageOps(t *testing.T) {
	// Pool sized to a non-page multiple so the last page is short.
	p := New("cross", 2*PageSize+128)
	data := make([]byte, PageSize+100)
	for i := range data {
		data[i] = byte(i)
	}
	p.Store(PageSize-50, data) // spans pages 0,1,2
	s := p.TakeSnapshot()
	v := FromSnapshot("view", s)

	got := make([]byte, len(data))
	v.Load(PageSize-50, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page load from COW view mismatch")
	}

	v.Memset(PageSize-10, 0xEE, 20) // privatizes pages 0 and 1
	v.Copy(2*PageSize, PageSize-10, 20)
	chk := make([]byte, 20)
	v.Load(2*PageSize, chk)
	for _, b := range chk {
		if b != 0xEE {
			t.Fatal("COW memset+copy round-trip mismatch")
		}
	}
	if s.Bytes()[PageSize-1] != data[49] {
		t.Fatal("COW memset mutated the snapshot")
	}
	if !bytes.Equal(v.Snapshot(), v.Bytes()) {
		t.Fatal("snapshot of a COW view does not match its image")
	}

	// A snapshot taken from the view must be isolated from later writes.
	sv := v.TakeSnapshot()
	want := sv.Bytes()
	v.Store64(PageSize, 0xDEAD)
	v.Store64(2*PageSize+64, 0xBEEF)
	if !bytes.Equal(sv.Bytes(), want) {
		t.Fatal("view writes mutated a snapshot taken from the view")
	}
}

func TestPokePeekUntracedButDirtying(t *testing.T) {
	p := New("poke", 2*PageSize)
	sink := &recordingSink{}
	p.SetSink(sink)
	p.TakeSnapshot() // establish a base so the next snapshot is a delta

	p.Poke(PageSize+4, []byte{1, 2, 3})
	var got [3]byte
	p.Peek(PageSize+4, got[:])
	if got != [3]byte{1, 2, 3} {
		t.Fatal("Peek does not read back Poke")
	}
	if len(sink.entries) != 0 {
		t.Fatalf("Poke/Peek produced %d trace entries, want 0", len(sink.entries))
	}

	// The poke must have dirtied its page: the delta snapshot sees it.
	s := p.TakeSnapshot()
	if s.Bytes()[PageSize+5] != 2 {
		t.Fatal("incremental snapshot missed a poked page")
	}

	// Poke privatizes COW pages like a store.
	v := FromSnapshot("view", s)
	v.Poke(0, []byte{0xFF})
	var b [1]byte
	v.Peek(0, b[:])
	if b[0] != 0xFF || s.Bytes()[0] == 0xFF {
		t.Fatal("Poke on a COW view misbehaved")
	}
}

func TestStaleDirtyMutantMissesWrites(t *testing.T) {
	// Sanity-check the mutation hook itself: with the stale-dirty mutant
	// on, an incremental snapshot must (wrongly) reuse the base page.
	p := New("stale", 2*PageSize)
	p.TakeSnapshot()
	SetStaleDirtyForTest(true)
	defer SetStaleDirtyForTest(false)
	p.Store64(0, 0x42)
	s := p.TakeSnapshot()
	if s.Bytes()[0] == 0x42 {
		t.Fatal("stale-dirty mutant had no effect; the mutation test is toothless")
	}
}

func TestTornCOWMutantCorruptsPrivatizedPage(t *testing.T) {
	p := New("torn", 2*PageSize)
	p.Memset(0, 0x0F, 2*PageSize)
	s := p.TakeSnapshot()
	v := FromSnapshot("view", s)
	SetTornCOWForTest(true)
	defer SetTornCOWForTest(false)
	v.Store8(0, 0x1) // privatizes (and tears) page 0
	if v.Load8(PageSize/2) == 0x0F {
		t.Fatal("torn-COW mutant had no effect; the mutation test is toothless")
	}
	if v.Load8(PageSize+1) != 0x0F {
		t.Fatal("torn-COW mutant corrupted a page that was never privatized")
	}
}

func TestSnapshotKeepsNonPersistedData(t *testing.T) {
	// Footnote 3: the image copy includes data that is NOT guaranteed
	// persisted — no flush or fence ever happens here.
	p := New("footnote3", PageSize)
	sink := &recordingSink{}
	p.SetSink(sink)
	p.Store64(128, 0xCAFE)
	s := p.TakeSnapshot()
	if got := FromSnapshot("view", s).Load64(128); got != 0xCAFE {
		t.Fatalf("non-persisted store missing from snapshot view: got %#x", got)
	}
	for _, e := range sink.entries {
		if e.Kind == trace.SFence {
			t.Fatal("test bug: an SFence slipped in")
		}
	}
}
