// Package pmem simulates a byte-addressable persistent memory device with
// x86-style persistency semantics, replacing the Intel Optane DC module and
// DAX-mapped pool files of the paper's testbed.
//
// The model is the one XFDetector reasons about (§2.1, §4.1 of the paper):
//
//   - Stores land in the volatile cache hierarchy. Their content is visible
//     to subsequent loads immediately, but they are NOT guaranteed to be
//     persistent.
//   - CLWB / CLFLUSH request writeback of the 64-byte cache lines covering a
//     range, making them writeback-pending.
//   - Non-temporal stores bypass the cache and are immediately
//     writeback-pending.
//   - SFENCE completes all pending writebacks: only then are the written
//     values guaranteed to survive a failure. SFENCE is an *ordering point*;
//     the detection frontend injects a failure point before each one (§4.2).
//
// A Pool holds the full PM image including non-persisted updates, exactly
// like the PM image copy of §5.4 (footnote 3): the shadow PM — not the
// medium — tracks which bytes were guaranteed persisted. Addresses are
// pool-relative offsets, which makes every PM object's address deterministic
// across executions (the paper achieves the same with PMDK's
// PMEM_MMAP_HINT address derandomization).
//
// Every operation is reported to the attached trace Sink together with the
// source location of the caller (standing in for the instruction pointer
// that Pin records in the paper).
package pmem

import (
	"fmt"
	"sync"

	"github.com/pmemgo/xfdetector/internal/trace"
)

// CacheLineSize is the writeback granularity, matching x86.
const CacheLineSize = 64

// LineDown rounds addr down to its cache-line base.
func LineDown(addr uint64) uint64 { return addr &^ (CacheLineSize - 1) }

// LineUp rounds addr up to the next cache-line boundary.
func LineUp(addr uint64) uint64 {
	return (addr + CacheLineSize - 1) &^ (CacheLineSize - 1)
}

// A Sink receives trace entries as the program executes. The XFDetector
// frontend installs one; running with a nil sink is the "original program"
// configuration of Fig. 12b (no tracing, no detection).
type Sink interface {
	Record(e trace.Entry)
}

// RangeError reports an access outside the pool. Accessing PM out of bounds
// is a programming error in the tested workload, so pool accessors panic
// with a *RangeError rather than returning it.
type RangeError struct {
	Pool string
	Op   string
	Addr uint64
	Size uint64
	Len  uint64
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("pmem: %s out of range on pool %q: [0x%x, 0x%x) with pool size 0x%x",
		e.Op, e.Pool, e.Addr, e.Addr+e.Size, e.Len)
}

// Pool is one simulated persistent memory pool.
//
// A Pool is not safe for fully concurrent mutation of overlapping data (the
// workloads in the paper's evaluation perform independent operations per
// thread, §7), but every accessor performs its image mutation, dirty-page
// marking and trace-entry capture inside one p.mu critical section, so
// concurrent tracing is well formed and TakeSnapshot observes image bytes
// and dirty bits atomically with respect to every store path.
type Pool struct {
	name string
	size uint64

	// Exactly one backing representation is set. Root pools (New,
	// FromImage) use the flat buf plus the incremental-snapshot state
	// below; post-failure pools built by FromSnapshot are copy-on-write
	// views using pages/owned (snapshot.go).
	buf   []byte
	pages [][]byte
	owned []bool

	mu sync.Mutex
	// Incremental-snapshot state (root pools; see snapshot.go): incSnap
	// gates delta snapshots, dirty is the page-granularity bitmap of
	// writes since base, base is the previous snapshot.
	incSnap bool
	dirty   []uint64
	base    *Snapshot
	// file is the durable half of a file-backed root pool (file.go); nil
	// for in-memory pools and COW views. Set once at construction — the
	// nil check needs no lock — with all field mutation under mu.
	file *fileState

	sink      Sink
	stage     trace.Stage
	fenceHook func() // invoked immediately BEFORE each SFence takes effect
	libDepth  int    // >0 while executing inside a traced PM library
	skipDet   int    // >0 while inside a skipDetection region
	tid       uint32
	ipEnabled bool
	faults    *FaultHooks // deterministic harness-fault injection (faults.go)
}

// New creates a zeroed pool of the given size. Size is rounded up to a whole
// number of cache lines.
func New(name string, size int) *Pool {
	if size <= 0 {
		panic(fmt.Sprintf("pmem: pool %q must have positive size, got %d", name, size))
	}
	sz := LineUp(uint64(size))
	return &Pool{
		name:      name,
		size:      sz,
		buf:       make([]byte, sz),
		incSnap:   true,
		dirty:     make([]uint64, (numPages(sz)+63)/64),
		ipEnabled: true,
	}
}

// FromImage creates a pool backed by a full copy of img. The ablation
// configuration (incremental snapshots disabled) uses it to spawn
// post-failure executions the original O(PoolSize) way; FromSnapshot is the
// copy-on-write fast path.
func FromImage(name string, img []byte) *Pool {
	buf := make([]byte, len(img))
	copy(buf, img)
	sz := uint64(len(buf))
	return &Pool{
		name:      name,
		size:      sz,
		buf:       buf,
		incSnap:   true,
		dirty:     make([]uint64, (numPages(sz)+63)/64),
		ipEnabled: true,
	}
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// Size returns the pool size in bytes.
func (p *Pool) Size() uint64 { return p.size }

// Snapshot returns a flat copy of the full PM image, including updates that
// are not guaranteed persisted (footnote 3 of the paper). It does not touch
// the incremental-snapshot state; the detection frontend uses TakeSnapshot.
func (p *Pool) Snapshot() []byte {
	img := make([]byte, p.size)
	p.mu.Lock()
	p.readLocked(0, img)
	p.mu.Unlock()
	return img
}

// Bytes returns the PM image for read-only inspection in tests: the live
// buffer of a root pool, a materialized copy for a COW view.
func (p *Pool) Bytes() []byte {
	if p.buf != nil {
		return p.buf
	}
	return p.Snapshot()
}

// SetSink attaches (or, with nil, detaches) the trace sink.
func (p *Pool) SetSink(s Sink) {
	p.mu.Lock()
	p.sink = s
	p.mu.Unlock()
}

// SetStage sets the stage recorded on subsequent entries.
func (p *Pool) SetStage(s trace.Stage) {
	p.mu.Lock()
	p.stage = s
	p.mu.Unlock()
}

// Stage returns the stage currently recorded on entries.
func (p *Pool) Stage() trace.Stage {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stage
}

// SetFenceHook installs f to run immediately before every SFence. The
// XFDetector frontend uses the hook to inject failure points before each
// ordering point (§4.2).
func (p *Pool) SetFenceHook(f func()) {
	p.mu.Lock()
	p.fenceHook = f
	p.mu.Unlock()
}

// SetTID sets the mutator thread id recorded on entries.
func (p *Pool) SetTID(tid uint32) {
	p.mu.Lock()
	p.tid = tid
	p.mu.Unlock()
}

// SetIPCapture toggles source-location capture. Disabling it removes the
// runtime.Callers cost; reports then lack file:line information.
func (p *Pool) SetIPCapture(on bool) {
	p.mu.Lock()
	p.ipEnabled = on
	p.mu.Unlock()
}

// EnterLibrary marks the start of traced PM-library code (pmobj). Entries
// recorded until the matching ExitLibrary carry InLibrary, which the backend
// uses for PMDK-style function-granularity semantics (§5.3).
func (p *Pool) EnterLibrary() {
	p.mu.Lock()
	p.libDepth++
	p.mu.Unlock()
}

// ExitLibrary ends a library region started by EnterLibrary.
func (p *Pool) ExitLibrary() {
	p.mu.Lock()
	if p.libDepth == 0 {
		p.mu.Unlock()
		panic("pmem: ExitLibrary without EnterLibrary")
	}
	p.libDepth--
	p.mu.Unlock()
}

// EnterSkipDetection marks the start of a region whose entries the backend
// must not check (Table 2: skipDetectionBegin).
func (p *Pool) EnterSkipDetection() {
	p.mu.Lock()
	p.skipDet++
	p.mu.Unlock()
}

// ExitSkipDetection ends a skip-detection region.
func (p *Pool) ExitSkipDetection() {
	p.mu.Lock()
	if p.skipDet == 0 {
		p.mu.Unlock()
		panic("pmem: ExitSkipDetection without EnterSkipDetection")
	}
	p.skipDet--
	p.mu.Unlock()
}

// InLibrary reports whether execution is currently inside a traced library
// region.
func (p *Pool) InLibrary() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.libDepth > 0
}

func (p *Pool) check(op string, addr, size uint64) {
	if addr+size > p.size || addr+size < addr {
		panic(&RangeError{Pool: p.name, Op: op, Addr: addr, Size: size, Len: p.size})
	}
}

// captureLocked builds the trace entry for one operation; callers hold
// p.mu. A nil sink result means tracing is detached and nothing is
// delivered.
func (p *Pool) captureLocked(kind trace.Kind, addr, size uint64, fn string) (*FaultHooks, Sink, trace.Entry) {
	if p.sink == nil {
		return nil, nil, trace.Entry{}
	}
	e := trace.Entry{
		Kind:          kind,
		Addr:          addr,
		Size:          size,
		Stage:         p.stage,
		TID:           p.tid,
		Func:          fn,
		InLibrary:     p.libDepth > 0,
		SkipDetection: p.skipDet > 0,
	}
	if p.ipEnabled {
		e.IP = callerIP()
	}
	return p.faults, p.sink, e
}

// emit records one trace entry if a sink is attached.
func (p *Pool) emit(kind trace.Kind, addr, size uint64, fn string) {
	p.mu.Lock()
	faults, sink, e := p.captureLocked(kind, addr, size, fn)
	p.mu.Unlock()
	if sink != nil {
		deliver(faults, sink, e)
	}
}

// emitWrite performs the image mutation and captures the trace entry in one
// critical section, then delivers the entry outside the pool mutex.
func (p *Pool) emitWrite(kind trace.Kind, addr uint64, data []byte) {
	p.mu.Lock()
	p.writeLocked(addr, data)
	faults, sink, e := p.captureLocked(kind, addr, uint64(len(data)), "")
	p.mu.Unlock()
	if sink != nil {
		deliver(faults, sink, e)
	}
}

// emitRead reads len(dst) bytes and captures the trace entry in one
// critical section, then delivers the entry outside the pool mutex.
func (p *Pool) emitRead(addr uint64, dst []byte) {
	p.mu.Lock()
	p.readLocked(addr, dst)
	faults, sink, e := p.captureLocked(trace.Read, addr, uint64(len(dst)), "")
	p.mu.Unlock()
	if sink != nil {
		deliver(faults, sink, e)
	}
}

// deliver hands e to the sink, consulting the sink fault hook first. The
// hook runs outside the pool mutex so it may itself touch the pool.
func deliver(faults *FaultHooks, sink Sink, e trace.Entry) {
	if faults != nil && faults.Sink != nil {
		if err := faults.Sink(e); err != nil {
			panic(&HarnessFault{Op: "trace-sink", Err: err})
		}
	}
	sink.Record(e)
}

// Store writes data at addr through the cache hierarchy. The new value is
// immediately visible to loads but not guaranteed persistent.
func (p *Pool) Store(addr uint64, data []byte) {
	p.check("store", addr, uint64(len(data)))
	p.emitWrite(trace.Write, addr, data)
}

// NTStore writes data at addr with a non-temporal store: the range becomes
// writeback-pending immediately and is persisted by the next SFence.
func (p *Pool) NTStore(addr uint64, data []byte) {
	p.check("ntstore", addr, uint64(len(data)))
	p.emitWrite(trace.NTStore, addr, data)
}

// Load reads len(dst) bytes at addr into dst.
func (p *Pool) Load(addr uint64, dst []byte) {
	p.check("load", addr, uint64(len(dst)))
	p.emitRead(addr, dst)
}

// Store8 writes one byte.
func (p *Pool) Store8(addr uint64, v uint8) {
	p.check("store", addr, 1)
	b := [1]byte{v}
	p.emitWrite(trace.Write, addr, b[:])
}

// Load8 reads one byte.
func (p *Pool) Load8(addr uint64) uint8 {
	p.check("load", addr, 1)
	var b [1]byte
	p.emitRead(addr, b[:])
	return b[0]
}

// Store16 writes a little-endian uint16.
func (p *Pool) Store16(addr uint64, v uint16) {
	p.check("store", addr, 2)
	b := [2]byte{byte(v), byte(v >> 8)}
	p.emitWrite(trace.Write, addr, b[:])
}

// Load16 reads a little-endian uint16.
func (p *Pool) Load16(addr uint64) uint16 {
	p.check("load", addr, 2)
	var b [2]byte
	p.emitRead(addr, b[:])
	return uint16(b[0]) | uint16(b[1])<<8
}

// Store32 writes a little-endian uint32.
func (p *Pool) Store32(addr uint64, v uint32) {
	p.check("store", addr, 4)
	var b [4]byte
	putU32(b[:], v)
	p.emitWrite(trace.Write, addr, b[:])
}

// Load32 reads a little-endian uint32.
func (p *Pool) Load32(addr uint64) uint32 {
	p.check("load", addr, 4)
	var b [4]byte
	p.emitRead(addr, b[:])
	return getU32(b[:])
}

// Store64 writes a little-endian uint64.
func (p *Pool) Store64(addr uint64, v uint64) {
	p.check("store", addr, 8)
	var b [8]byte
	putU64(b[:], v)
	p.emitWrite(trace.Write, addr, b[:])
}

// Load64 reads a little-endian uint64.
func (p *Pool) Load64(addr uint64) uint64 {
	p.check("load", addr, 8)
	var b [8]byte
	p.emitRead(addr, b[:])
	return getU64(b[:])
}

// Memset writes n copies of b starting at addr.
func (p *Pool) Memset(addr uint64, b byte, n uint64) {
	p.check("memset", addr, n)
	p.mu.Lock()
	p.memsetLocked(addr, b, n)
	faults, sink, e := p.captureLocked(trace.Write, addr, n, "")
	p.mu.Unlock()
	if sink != nil {
		deliver(faults, sink, e)
	}
}

// Copy performs a PM-to-PM memmove of n bytes; it traces a read of the
// source and a write of the destination.
func (p *Pool) Copy(dst, src, n uint64) {
	p.check("copy-src", src, n)
	p.check("copy-dst", dst, n)
	p.emit(trace.Read, src, n, "")
	p.mu.Lock()
	if p.buf != nil {
		copy(p.buf[dst:dst+n], p.buf[src:src+n])
		p.markDirtyLocked(dst, n)
	} else {
		tmp := make([]byte, n)
		p.readLocked(src, tmp)
		p.writeLocked(dst, tmp)
	}
	faults, sink, e := p.captureLocked(trace.Write, dst, n, "")
	p.mu.Unlock()
	if sink != nil {
		deliver(faults, sink, e)
	}
}

// CLWB requests writeback of the cache lines covering [addr, addr+size).
func (p *Pool) CLWB(addr, size uint64) {
	p.check("clwb", addr, size)
	base := LineDown(addr)
	p.emit(trace.CLWB, base, LineUp(addr+size)-base, "")
}

// CLFlush flushes (evicts and writes back) the covering cache lines. For
// persistence it behaves like CLWB.
func (p *Pool) CLFlush(addr, size uint64) {
	p.check("clflush", addr, size)
	base := LineDown(addr)
	p.emit(trace.CLFlush, base, LineUp(addr+size)-base, "")
}

// SFence is a store fence: it completes all pending writebacks, making them
// persistent, and advances the ordering timestamp. It is an ordering point;
// the installed fence hook (the failure injector) runs first. On a
// file-backed pool the fence is also a persist boundary: the dirty pages
// are written back to the pool file in coalesced msync ranges. SFence has
// no error path, so a persist failure is stashed and surfaced by the next
// SnapshotErr — i.e. at the next failure point, where the frontend's
// retry-then-quarantine machinery owns it.
func (p *Pool) SFence() {
	p.mu.Lock()
	hook := p.fenceHook
	p.mu.Unlock()
	if hook != nil {
		hook()
	}
	p.emit(trace.SFence, 0, 0, "")
	if p.file != nil {
		p.mu.Lock()
		if err := p.persistLocked(); err != nil {
			p.file.pending = err
		}
		p.mu.Unlock()
	}
}

// Persist is the paper's persist_barrier(): CLWB of the range followed by an
// SFence.
func (p *Pool) Persist(addr, size uint64) {
	p.CLWB(addr, size)
	p.SFence()
}

// Announce records a bare trace entry of the given kind. The pmobj library
// uses it for transaction and function events; user code normally does not
// call it.
func (p *Pool) Announce(kind trace.Kind, addr, size uint64, fn string) {
	if kind.IsMemOp() {
		p.check(kind.String(), addr, size)
	}
	p.emit(kind, addr, size, fn)
}

// AnnounceEntry records e after filling in the pool's current stage, thread
// id, library/skip flags and caller location. Kind, addresses and function
// name are taken from e.
func (p *Pool) AnnounceEntry(e trace.Entry) {
	if e.Kind.IsMemOp() {
		p.check(e.Kind.String(), e.Addr, e.Size)
	}
	p.mu.Lock()
	sink := p.sink
	if sink == nil {
		p.mu.Unlock()
		return
	}
	e.Stage = p.stage
	e.TID = p.tid
	e.InLibrary = p.libDepth > 0
	e.SkipDetection = p.skipDet > 0
	if p.ipEnabled && e.IP == "" {
		e.IP = callerIP()
	}
	faults := p.faults
	p.mu.Unlock()
	deliver(faults, sink, e)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
