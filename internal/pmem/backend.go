package pmem

// Pool backends.
//
// A Backend constructs the root pool of a detection campaign. The default
// in-memory backend keeps the PM image in a heap slice, exactly as every
// prior PR assumed; the file-backed backend (file.go) maps the image onto
// an on-disk file so pool state survives the process and campaign size is
// no longer capped by RAM. Post-failure pools are unaffected either way:
// they are always copy-on-write views over in-memory snapshots
// (FromSnapshot), because a post-failure execution must never advance the
// durable image.

// Backend constructs root pools. Implementations are small value types so
// a core.Config can carry one by value through spawned shards.
type Backend interface {
	// NewPool creates the campaign's root pool of the given size.
	NewPool(name string, size int) (*Pool, error)
	// String names the backend in results and logs ("memory", "file").
	String() string
}

// MemBackend is the default backend: the pool is an in-memory byte slice
// and nothing survives the process.
type MemBackend struct{}

// NewPool creates a zeroed in-memory pool; it cannot fail.
func (MemBackend) NewPool(name string, size int) (*Pool, error) {
	return New(name, size), nil
}

func (MemBackend) String() string { return "memory" }

// FileBackend maps the pool onto an on-disk file with msync-granularity
// persistence (file.go): dirtied pages are written back in coalesced
// ranges at every SFence and failure-point snapshot, so the file always
// holds the PM image as of the last persist boundary.
type FileBackend struct {
	// Path is the backing pool file. A fresh campaign refuses to reuse an
	// existing file; Resume reopens it.
	Path string
	// Resume reopens an existing pool file from a killed campaign. The
	// deterministic pre-failure replay is authoritative; the surviving
	// file lets the replay skip writing back every page whose on-disk
	// content already matches (compare-skip), so a resumed campaign does
	// not re-msync already-persisted pages.
	Resume bool
	// Hooks injects disk faults during pool creation (the Extend hook
	// fires before core.Run can install Config.FaultHooks on the pool);
	// the detection frontend installs the same hooks on the created pool
	// for the msync-time fault classes.
	Hooks *FaultHooks
}

// NewPool creates (or, with Resume, reopens) the file-backed pool.
func (b FileBackend) NewPool(name string, size int) (*Pool, error) {
	return NewFileBacked(name, b.Path, size, b.Resume, b.Hooks)
}

func (FileBackend) String() string { return "file" }
