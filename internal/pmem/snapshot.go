package pmem

// Incremental snapshots and copy-on-write post-failure views.
//
// The detection loop of Fig. 8 copies the PM image at every failure point
// and then copies it again to build the post-failure pool. Both copies were
// O(PoolSize) even when the workload dirtied a few KB between ordering
// points, which made the per-failure-point cost grow with the pool rather
// than with the work done (§6.2.1 measures exactly this machinery). The
// scheme here makes the first copy O(bytes dirtied since the last failure
// point) and the second O(pool pages / pointer), preserving footnote-3
// semantics exactly: a Snapshot always reflects the full image including
// non-persisted updates.
//
//   - Root pools (New, FromImage) keep a flat buffer plus a page-granularity
//     dirty bitmap. Every store path marks the pages it touches inside the
//     same critical section that mutates the buffer, so a concurrent
//     TakeSnapshot (also under p.mu) observes buffer bytes and dirty bits
//     atomically.
//   - TakeSnapshot reuses the pages of the previous snapshot (the "base")
//     for every clean page and clones only dirty pages. Snapshot pages are
//     immutable once published: the root pool writes exclusively to its own
//     flat buffer, and views clone a page before the first write.
//   - FromSnapshot builds a post-failure pool as a copy-on-write view: it
//     shares the snapshot's pages and privatizes a page on first write. A
//     retried post-run attempt simply builds a fresh view — dropping the
//     overlay — instead of re-copying the image.
//
// COW aliasing contract: Snapshot.pages may be shared between the snapshot,
// the root pool's base, later snapshots, and any number of concurrent
// post-failure views. All of them treat shared pages as read-only; the only
// writers are (a) the root pool, into its private flat buffer, and (b) a
// view, into pages it has privatized under its own mutex. This mirrors the
// trace prefix-aliasing contract of the parallel engine (internal/core,
// fpWork): sharing is safe because the shared region is never mutated.

// PageSize is the dirty-tracking and copy-on-write granularity.
const PageSize = 4096

// Snapshot is an immutable copy of a PM image, taken at a failure point. It
// includes updates that are not guaranteed persisted (footnote 3 of the
// paper); the shadow PM — not the image — tracks persistence.
type Snapshot struct {
	size  uint64
	pages [][]byte // page i covers [i*PageSize, min((i+1)*PageSize, size))
}

// Size returns the snapshotted pool size in bytes.
func (s *Snapshot) Size() uint64 { return s.size }

// Bytes materializes the snapshot as one flat image copy.
func (s *Snapshot) Bytes() []byte {
	img := make([]byte, s.size)
	for i, pg := range s.pages {
		copy(img[uint64(i)*PageSize:], pg)
	}
	return img
}

func numPages(size uint64) int {
	return int((size + PageSize - 1) / PageSize)
}

// pageBounds returns the [lo, hi) byte range of page pg in a pool of the
// given size.
func pageBounds(pg int, size uint64) (lo, hi uint64) {
	lo = uint64(pg) * PageSize
	hi = lo + PageSize
	if hi > size {
		hi = size
	}
	return lo, hi
}

func clonePage(pg []byte) []byte {
	np := make([]byte, len(pg))
	copy(np, pg)
	return np
}

// FromSnapshot creates a pool backed by a copy-on-write view over s. The
// detection frontend uses it to spawn each post-failure execution: creating
// the view costs one page-pointer copy, and only pages the post-failure
// stage actually writes are ever duplicated.
func FromSnapshot(name string, s *Snapshot) *Pool {
	return &Pool{
		name:      name,
		size:      s.size,
		pages:     append([][]byte(nil), s.pages...),
		owned:     make([]bool, len(s.pages)),
		ipEnabled: true,
	}
}

// SetIncrementalSnapshots toggles delta snapshots on a root pool (on by
// default). When disabled — the ablation configuration — TakeSnapshot
// clones every page and maintains no base, reproducing the original
// full-copy-per-failure-point behavior.
func (p *Pool) SetIncrementalSnapshots(on bool) {
	p.mu.Lock()
	p.incSnap = on
	p.base = nil
	p.mu.Unlock()
}

// TakeSnapshot copies the full PM image, including non-persisted updates.
// On a root pool with incremental snapshots enabled the copy is
// O(bytes dirtied since the previous TakeSnapshot): clean pages are shared
// with the previous snapshot.
func (p *Pool) TakeSnapshot() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked()
}

// snapshotLocked is TakeSnapshot's body; callers hold p.mu.
func (p *Pool) snapshotLocked() *Snapshot {
	n := numPages(p.size)
	s := &Snapshot{size: p.size, pages: make([][]byte, n)}
	if p.buf == nil {
		// Snapshotting a COW view: share pages the view never wrote and
		// clone the privatized ones (the view may keep writing to those).
		for i := range s.pages {
			if p.owned[i] {
				s.pages[i] = clonePage(p.pages[i])
			} else {
				s.pages[i] = p.pages[i]
			}
		}
		return s
	}
	if p.incSnap && p.base != nil {
		copy(s.pages, p.base.pages)
		for pg := 0; pg < n; pg++ {
			if p.dirty[pg/64]&(1<<(pg%64)) != 0 {
				lo, hi := pageBounds(pg, p.size)
				s.pages[pg] = clonePage(p.buf[lo:hi])
			}
		}
	} else {
		for pg := 0; pg < n; pg++ {
			lo, hi := pageBounds(pg, p.size)
			s.pages[pg] = clonePage(p.buf[lo:hi])
		}
	}
	if p.incSnap {
		p.base = s
		for i := range p.dirty {
			p.dirty[i] = 0
		}
	}
	return s
}

// DeltaPage is one dirty page captured by TakeDelta.
type DeltaPage struct {
	Index int    // page number (page i covers [i*PageSize, (i+1)*PageSize))
	Data  []byte // immutable once captured; len < PageSize only on the tail
}

// TakeDelta drains the dirty bitmap of a root pool: it returns a clone of
// every page written since the previous TakeDelta (or pool creation) and
// clears the dirty bits, so consecutive deltas compose back into the full
// image when applied in order over a zeroed pool. Recording campaigns
// (internal/record) call it at each failure point to serialize
// page-granular pool deltas instead of full images. Taking a delta resets
// the incremental-snapshot base — the next TakeSnapshot after a TakeDelta
// pays a full copy — which is irrelevant to the record pass, whose
// post-failure stage never runs and therefore never snapshots.
func (p *Pool) TakeDelta() []DeltaPage {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.buf == nil {
		return nil // COW views track no dirty bits
	}
	var out []DeltaPage
	n := numPages(p.size)
	for pg := 0; pg < n; pg++ {
		if p.dirty[pg/64]&(1<<(pg%64)) != 0 {
			lo, hi := pageBounds(pg, p.size)
			out = append(out, DeltaPage{Index: pg, Data: clonePage(p.buf[lo:hi])})
		}
	}
	for i := range p.dirty {
		p.dirty[i] = 0
	}
	p.base = nil
	return out
}

// markDirtyLocked records that [addr, addr+size) was written; callers hold
// p.mu and have bounds-checked the range. Root pools only. On a
// file-backed pool the same write also dirties the writeback bitmap
// (file.go) — one marking path feeds both the incremental snapshots and
// the msync batching, so they can never disagree about what was written.
func (p *Pool) markDirtyLocked(addr, size uint64) {
	if size == 0 || staleDirtyForTest {
		return
	}
	for pg := addr / PageSize; pg <= (addr+size-1)/PageSize; pg++ {
		p.dirty[pg/64] |= 1 << (pg % 64)
		if p.file != nil {
			p.file.syncDirty[pg/64] |= 1 << (pg % 64)
		}
	}
}

// writablePageLocked returns page pg with write permission, privatizing a
// shared snapshot page on first write; callers hold p.mu. COW views only.
func (p *Pool) writablePageLocked(pg uint64) []byte {
	if !p.owned[pg] {
		np := clonePage(p.pages[pg])
		if tornCOWForTest {
			tearPage(np)
		}
		p.pages[pg] = np
		p.owned[pg] = true
	}
	return p.pages[pg]
}

// writeLocked copies data into the image at addr; callers hold p.mu and
// have bounds-checked the range.
func (p *Pool) writeLocked(addr uint64, data []byte) {
	if p.buf != nil {
		copy(p.buf[addr:], data)
		p.markDirtyLocked(addr, uint64(len(data)))
		return
	}
	for len(data) > 0 {
		page := p.writablePageLocked(addr / PageSize)
		n := copy(page[addr%PageSize:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// readLocked copies len(dst) image bytes at addr into dst; callers hold
// p.mu and have bounds-checked the range.
func (p *Pool) readLocked(addr uint64, dst []byte) {
	if p.buf != nil {
		copy(dst, p.buf[addr:])
		return
	}
	for len(dst) > 0 {
		n := copy(dst, p.pages[addr/PageSize][addr%PageSize:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

// memsetLocked writes n copies of b starting at addr; callers hold p.mu and
// have bounds-checked the range.
func (p *Pool) memsetLocked(addr uint64, b byte, n uint64) {
	if p.buf != nil {
		for i := uint64(0); i < n; i++ {
			p.buf[addr+i] = b
		}
		p.markDirtyLocked(addr, n)
		return
	}
	for n > 0 {
		page := p.writablePageLocked(addr / PageSize)
		off := addr % PageSize
		run := uint64(len(page)) - off
		if run > n {
			run = n
		}
		for i := uint64(0); i < run; i++ {
			page[off+i] = b
		}
		addr += run
		n -= run
	}
}

// Poke writes data at addr without tracing, dirtying pages and privatizing
// COW pages exactly like a traced store. The differential fuzzer uses it to
// plant deterministic values that its oracle predicts independently; it is
// a harness API, not part of the simulated instruction set.
func (p *Pool) Poke(addr uint64, data []byte) {
	p.check("poke", addr, uint64(len(data)))
	p.mu.Lock()
	p.writeLocked(addr, data)
	p.mu.Unlock()
}

// Peek reads len(dst) bytes at addr into dst without tracing. The harness
// counterpart of Poke.
func (p *Pool) Peek(addr uint64, dst []byte) {
	p.check("peek", addr, uint64(len(dst)))
	p.mu.Lock()
	p.readLocked(addr, dst)
	p.mu.Unlock()
}
