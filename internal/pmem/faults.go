package pmem

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/trace"
)

// Harness-fault injection.
//
// The detection loop copies PM images and streams trace entries through
// sinks; in a production campaign either can fail (an exhausted allocator, a
// broken trace spool). Those are *harness-internal* faults — the tested
// program did nothing wrong — and the detector must degrade gracefully:
// retry, quarantine the failure point, and keep the campaign running. The
// hooks here let tests inject such faults deterministically so every
// degradation path is exercised rather than trusted.

// HarnessFault marks a failure of the detection harness itself, as opposed
// to a bug in the tested program. The detection frontend retries and then
// quarantines the affected failure point instead of reporting a bug.
type HarnessFault struct {
	// Op names the harness operation that failed: "image-copy" or
	// "trace-sink" for the in-memory faults, "msync", "short-msync",
	// "torn-mmap" or "pool-extend" for the disk fault classes of a
	// file-backed pool (file.go).
	Op  string
	Err error
}

func (f *HarnessFault) Error() string {
	return fmt.Sprintf("pmem: harness fault during %s: %v", f.Op, f.Err)
}

func (f *HarnessFault) Unwrap() error { return f.Err }

// FaultHooks injects deterministic harness-internal faults. Each hook is
// consulted before the operation it guards; returning a non-nil error fails
// that operation with a *HarnessFault. The zero value injects nothing.
// Hooks must be safe for concurrent use (parallel detection calls them from
// worker goroutines).
type FaultHooks struct {
	// Snapshot is consulted before each PM image copy (SnapshotErr); a
	// non-nil error fails the copy.
	Snapshot func() error
	// Sink is consulted before each trace-sink delivery with the entry
	// about to be recorded; a non-nil error aborts the recording operation
	// by panicking with a *HarnessFault, which unwinds the stage being
	// traced into the detection frontend's recovery.
	Sink func(e trace.Entry) error
	// Msync is consulted before each coalesced dirty-range writeback of a
	// file-backed pool; a non-nil error fails the persist with Op "msync"
	// and leaves every page of the range dirty. Returning ENOSPC models
	// the disk-full class.
	Msync func(addr, size uint64) error
	// ShortMsync is consulted before each dirty-range writeback; a
	// non-nil error persists only the first keep bytes of the range and
	// fails with Op "short-msync", leaving the unpersisted pages dirty
	// for the retry. keep is ignored when err is nil.
	ShortMsync func(addr, size uint64) (keep uint64, err error)
	// TornMmap is consulted after each page of a file-backed pool is
	// written back, just before its read-back verification; a non-nil
	// error fails the persist with Op "torn-mmap" and leaves the page
	// dirty, modeling a page that reads back torn through the mapping.
	TornMmap func(page uint64) error
	// Extend is consulted before the backing file of a file-backed pool
	// is extended to the pool size at creation; a non-nil error fails
	// pool creation with Op "pool-extend" (the disk-full class at extend
	// time). It fires before the detection frontend can install hooks on
	// the pool, so it is consulted from FileBackend.Hooks.
	Extend func(size uint64) error
}

// SetFaultHooks installs h on the pool (nil disables fault injection).
//
// Propagation contract: the detection frontend installs the pre-failure
// pool's hooks on every post-failure pool it builds (the COW views over
// failure-point snapshots), and the shadow forks handed to parallel
// workers check against those same views — so a fault class armed on the
// root pool keeps firing across every post-failure attempt and every
// worker, with no un-instrumented copies. TestFaultHooksPropagation in
// internal/core pins this contract.
func (p *Pool) SetFaultHooks(h *FaultHooks) {
	p.mu.Lock()
	p.faults = h
	p.mu.Unlock()
}

// SnapshotErr is TakeSnapshot with the harness fault paths applied: on a
// file-backed pool it first persists the dirty pages (a failure-point
// snapshot is a persist boundary), then consults the image-copy fault
// hook; it returns a *HarnessFault instead of an image when either step
// fails. A persist failure stashed by SFence (which has no error path)
// surfaces here, riding the frontend's retry-once-then-quarantine
// handling exactly like an image-copy fault.
func (p *Pool) SnapshotErr() (*Snapshot, error) {
	p.mu.Lock()
	h := p.faults
	if p.file != nil {
		if err := p.persistLocked(); err != nil {
			p.mu.Unlock()
			return nil, err
		}
	}
	p.mu.Unlock()
	if h != nil && h.Snapshot != nil {
		if err := h.Snapshot(); err != nil {
			return nil, &HarnessFault{Op: "image-copy", Err: err}
		}
	}
	return p.TakeSnapshot(), nil
}
