package pmem

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/trace"
)

// Harness-fault injection.
//
// The detection loop copies PM images and streams trace entries through
// sinks; in a production campaign either can fail (an exhausted allocator, a
// broken trace spool). Those are *harness-internal* faults — the tested
// program did nothing wrong — and the detector must degrade gracefully:
// retry, quarantine the failure point, and keep the campaign running. The
// hooks here let tests inject such faults deterministically so every
// degradation path is exercised rather than trusted.

// HarnessFault marks a failure of the detection harness itself, as opposed
// to a bug in the tested program. The detection frontend retries and then
// quarantines the affected failure point instead of reporting a bug.
type HarnessFault struct {
	// Op names the harness operation that failed: "image-copy" or
	// "trace-sink".
	Op  string
	Err error
}

func (f *HarnessFault) Error() string {
	return fmt.Sprintf("pmem: harness fault during %s: %v", f.Op, f.Err)
}

func (f *HarnessFault) Unwrap() error { return f.Err }

// FaultHooks injects deterministic harness-internal faults. Each hook is
// consulted before the operation it guards; returning a non-nil error fails
// that operation with a *HarnessFault. The zero value injects nothing.
// Hooks must be safe for concurrent use (parallel detection calls them from
// worker goroutines).
type FaultHooks struct {
	// Snapshot is consulted before each PM image copy (SnapshotErr); a
	// non-nil error fails the copy.
	Snapshot func() error
	// Sink is consulted before each trace-sink delivery with the entry
	// about to be recorded; a non-nil error aborts the recording operation
	// by panicking with a *HarnessFault, which unwinds the stage being
	// traced into the detection frontend's recovery.
	Sink func(e trace.Entry) error
}

// SetFaultHooks installs h on the pool (nil disables fault injection). The
// detection frontend propagates the hooks of the pre-failure pool to every
// post-failure image copy.
func (p *Pool) SetFaultHooks(h *FaultHooks) {
	p.mu.Lock()
	p.faults = h
	p.mu.Unlock()
}

// SnapshotErr is TakeSnapshot with the image-copy fault hook applied: it
// returns a *HarnessFault instead of an image when the hook fails the copy.
func (p *Pool) SnapshotErr() (*Snapshot, error) {
	p.mu.Lock()
	h := p.faults
	p.mu.Unlock()
	if h != nil && h.Snapshot != nil {
		if err := h.Snapshot(); err != nil {
			return nil, &HarnessFault{Op: "image-copy", Err: err}
		}
	}
	return p.TakeSnapshot(), nil
}
