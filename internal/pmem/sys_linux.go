//go:build linux

package pmem

import (
	"os"
	"syscall"
	"unsafe"
)

// Platform layer of the file-backed pool backend (file.go): mmap, msync
// and pool-file locking. Only the linux implementation is real — the
// paper's testbed (DAX-mapped Optane pool files) is linux-only, and so is
// every CI target of this repo; other platforms get the stubs in
// sys_other.go and a clear "unsupported" error.

const fileBackendSupported = true

// errNoSpace is the disk-full errno the injected disk-full fault class
// reports.
var errNoSpace error = syscall.ENOSPC

// mapShared maps size bytes of f read-write and shared: the durable view.
// Stores into the returned slice land in the page cache of the backing
// file; msyncRange makes a range of them durable.
func mapShared(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

// mapAnon maps size bytes of zeroed private anonymous memory: the working
// image (the simulated cache hierarchy plus medium of footnote 3). Lazily
// committed, so an untouched page of a huge pool costs no RAM.
func mapAnon(size int) ([]byte, error) {
	return syscall.Mmap(-1, 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANONYMOUS)
}

// unmap releases a mapping created by mapShared or mapAnon.
func unmap(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}

// lockFile takes an exclusive non-blocking flock on the pool file, so two
// processes (for example two shards handed the same -pool-file) cannot
// both advance one durable image.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

// msyncRange synchronously flushes a page-aligned subrange of a shared
// mapping to the backing file (MS_SYNC). The stdlib syscall package has
// no Msync wrapper, hence the raw syscall.
func msyncRange(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}
