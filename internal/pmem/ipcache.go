package pmem

import (
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Instruction-pointer resolution.
//
// Every traced PM operation records the source location of its caller — the
// stand-in for the instruction pointer Pin captures in the paper. Resolving
// a PC to file:line (runtime.CallersFrames plus string building) is far more
// expensive than collecting the raw PCs, and a workload executes the same
// handful of call sites millions of times, so the resolution is memoized
// per PC. The cache is package-global: PCs are process-stable, and sharing
// it across pools lets post-failure executions reuse what the pre-failure
// stage resolved.

// ipCacheEntry is the memoized skip/answer decision for one PC. done means
// the walk stops at this PC with loc as the answer; otherwise the PC's
// frames were all internal and the walk continues to the next PC.
type ipCacheEntry struct {
	loc  string
	done bool
}

var ipCache sync.Map // uintptr → ipCacheEntry

// callerIP returns the file:line of the nearest caller outside this package.
func callerIP() string {
	var pcs [16]uintptr
	// Skip runtime.Callers, callerIP and the capture helper; the remaining
	// in-package frames (the pool accessor itself) are filtered by file.
	n := runtime.Callers(3, pcs[:])
	for _, pc := range pcs[:n] {
		if ent := resolvePC(pc); ent.done {
			return ent.loc
		}
	}
	return ""
}

// resolvePC memoizes the frame walk for a single PC, including inlined
// frames (one PC can expand to several).
func resolvePC(pc uintptr) ipCacheEntry {
	if v, ok := ipCache.Load(pc); ok {
		return v.(ipCacheEntry)
	}
	var ent ipCacheEntry
	frames := runtime.CallersFrames([]uintptr{pc})
	for {
		f, more := frames.Next()
		if f.File == "" {
			ent = ipCacheEntry{done: true}
			break
		}
		if !strings.Contains(f.File, "internal/pmem/") || strings.HasSuffix(f.File, "_test.go") {
			ent = ipCacheEntry{loc: shortFile(f.File) + ":" + strconv.Itoa(f.Line), done: true}
			break
		}
		if !more {
			break
		}
	}
	ipCache.Store(pc, ent)
	return ent
}

func shortFile(path string) string {
	// Keep the last two path elements: "pkg/file.go".
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return path
	}
	j := strings.LastIndexByte(path[:i], '/')
	if j < 0 {
		return path
	}
	return path[j+1:]
}
