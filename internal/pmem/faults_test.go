package pmem

import (
	"bytes"
	"errors"
	"testing"

	"github.com/pmemgo/xfdetector/internal/trace"
)

type recordingSink struct{ entries []trace.Entry }

func (s *recordingSink) Record(e trace.Entry) { s.entries = append(s.entries, e) }

func TestSnapshotErrFault(t *testing.T) {
	p := New("faulty", 128)
	p.Store64(0, 42)

	img, err := p.SnapshotErr()
	if err != nil || !bytes.Equal(img.Bytes(), p.Bytes()) {
		t.Fatalf("fault-free SnapshotErr: img mismatch or err %v", err)
	}

	cause := errors.New("no memory for image copy")
	calls := 0
	p.SetFaultHooks(&FaultHooks{Snapshot: func() error { calls++; return cause }})
	if _, err := p.SnapshotErr(); err == nil {
		t.Fatal("expected injected snapshot fault")
	} else {
		var hf *HarnessFault
		if !errors.As(err, &hf) || hf.Op != "image-copy" || !errors.Is(err, cause) {
			t.Fatalf("fault not classified as image-copy HarnessFault: %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("snapshot hook calls = %d, want 1", calls)
	}

	p.SetFaultHooks(nil)
	if _, err := p.SnapshotErr(); err != nil {
		t.Fatalf("cleared hooks still fault: %v", err)
	}
}

func TestSinkFaultPanicsWithHarnessFault(t *testing.T) {
	p := New("faulty-sink", 128)
	sink := &recordingSink{}
	p.SetSink(sink)
	p.Store64(0, 1) // fault-free: recorded

	cause := errors.New("trace spool full")
	p.SetFaultHooks(&FaultHooks{Sink: func(e trace.Entry) error {
		if e.Kind == trace.Read {
			return cause
		}
		return nil
	}})
	p.Store64(8, 2) // writes still pass the selective hook

	defer func() {
		r := recover()
		hf, ok := r.(*HarnessFault)
		if !ok || hf.Op != "trace-sink" || !errors.Is(hf, cause) {
			t.Fatalf("recover() = %v, want trace-sink *HarnessFault wrapping %v", r, cause)
		}
		if len(sink.entries) != 2 {
			t.Fatalf("recorded entries = %d, want 2 (the faulted read must not reach the sink)", len(sink.entries))
		}
	}()
	p.Load64(0)
	t.Fatal("faulted load did not panic")
}
