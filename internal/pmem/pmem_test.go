package pmem

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/pmemgo/xfdetector/internal/trace"
)

// recorder collects entries for assertions.
type recorder struct{ entries []trace.Entry }

func (r *recorder) Record(e trace.Entry) { r.entries = append(r.entries, e) }

func (r *recorder) kinds() []trace.Kind {
	var ks []trace.Kind
	for _, e := range r.entries {
		ks = append(ks, e.Kind)
	}
	return ks
}

func TestLineMath(t *testing.T) {
	cases := []struct{ in, down, up uint64 }{
		{0, 0, 0}, {1, 0, 64}, {63, 0, 64}, {64, 64, 64}, {65, 64, 128}, {130, 128, 192},
	}
	for _, c := range cases {
		if LineDown(c.in) != c.down {
			t.Errorf("LineDown(%d) = %d, want %d", c.in, LineDown(c.in), c.down)
		}
		if LineUp(c.in) != c.up {
			t.Errorf("LineUp(%d) = %d, want %d", c.in, LineUp(c.in), c.up)
		}
	}
}

// TestLineMathProperty: LineDown/LineUp bracket every address within one
// line (property-based).
func TestLineMathProperty(t *testing.T) {
	f := func(a uint64) bool {
		a %= 1 << 50
		d, u := LineDown(a), LineUp(a)
		return d%CacheLineSize == 0 && u%CacheLineSize == 0 &&
			d <= a && a <= u && u-d <= CacheLineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewRoundsToLines(t *testing.T) {
	p := New("x", 100)
	if p.Size() != 128 {
		t.Fatalf("size = %d, want 128", p.Size())
	}
	if p.Name() != "x" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestTypedAccessRoundTrip(t *testing.T) {
	p := New("x", 4096)
	p.Store8(0, 0xAB)
	p.Store16(8, 0xBEEF)
	p.Store32(16, 0xDEADBEEF)
	p.Store64(24, 0x0123456789ABCDEF)
	if p.Load8(0) != 0xAB || p.Load16(8) != 0xBEEF ||
		p.Load32(16) != 0xDEADBEEF || p.Load64(24) != 0x0123456789ABCDEF {
		t.Fatal("typed round trip failed")
	}
	data := []byte("persistent memory")
	p.Store(100, data)
	got := make([]byte, len(data))
	p.Load(100, got)
	if !bytes.Equal(data, got) {
		t.Fatalf("bulk round trip: %q", got)
	}
}

// TestStoreLoadProperty: arbitrary in-bounds writes read back exactly
// (property-based).
func TestStoreLoadProperty(t *testing.T) {
	p := New("prop", 1<<16)
	f := func(off uint64, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		off %= p.Size() - uint64(len(data))%p.Size()
		if off+uint64(len(data)) > p.Size() {
			return true
		}
		p.Store(off, data)
		got := make([]byte, len(data))
		p.Load(off, got)
		return bytes.Equal(data, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMemsetAndCopy(t *testing.T) {
	p := New("x", 4096)
	p.Memset(64, 0x7F, 100)
	for i := uint64(64); i < 164; i++ {
		if p.Load8(i) != 0x7F {
			t.Fatalf("memset byte %d = %#x", i, p.Load8(i))
		}
	}
	p.Store(200, []byte("hello"))
	p.Copy(300, 200, 5)
	got := make([]byte, 5)
	p.Load(300, got)
	if string(got) != "hello" {
		t.Fatalf("copy = %q", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	p := New("x", 128)
	cases := []func(){
		func() { p.Store64(128, 1) },
		func() { p.Load64(121) },
		func() { p.Store(120, make([]byte, 16)) },
		func() { p.CLWB(130, 8) },
		func() { p.Memset(0, 0, 129) },
		func() { p.Copy(0, 120, 16) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("case %d: no panic", i)
					return
				}
				if _, ok := r.(*RangeError); !ok {
					t.Errorf("case %d: panic %v is not *RangeError", i, r)
				}
			}()
			fn()
		}()
	}
}

func TestRangeErrorMessage(t *testing.T) {
	err := &RangeError{Pool: "p", Op: "store", Addr: 0x80, Size: 8, Len: 0x80}
	if !strings.Contains(err.Error(), "store") || !strings.Contains(err.Error(), `"p"`) {
		t.Fatalf("message = %q", err.Error())
	}
}

func TestSnapshotAndFromImage(t *testing.T) {
	p := New("x", 256)
	p.Store64(0, 42)
	p.Store64(64, 43)
	img := p.Snapshot()
	p.Store64(0, 99) // must not affect the snapshot
	q := FromImage("copy", img)
	if q.Load64(0) != 42 || q.Load64(64) != 43 {
		t.Fatal("snapshot is not isolated")
	}
	if p.Load64(0) != 99 {
		t.Fatal("original lost its update")
	}
}

func TestTraceEmission(t *testing.T) {
	p := New("x", 4096)
	rec := &recorder{}
	p.SetSink(rec)
	p.Store64(0, 1)
	p.Load64(0)
	p.CLWB(0, 8)
	p.SFence()
	p.NTStore(64, []byte{1, 2, 3})
	want := []trace.Kind{trace.Write, trace.Read, trace.CLWB, trace.SFence, trace.NTStore}
	got := rec.kinds()
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kind[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// CLWB entries are line-rounded.
	if e := rec.entries[2]; e.Addr != 0 || e.Size != 64 {
		t.Errorf("CLWB range = [%#x, %#x)", e.Addr, e.Addr+e.Size)
	}
	// IPs point into this test file.
	if !strings.Contains(rec.entries[0].IP, "pmem_test.go") {
		t.Errorf("IP = %q", rec.entries[0].IP)
	}
}

func TestNilSinkIsSilent(t *testing.T) {
	p := New("x", 128)
	p.Store64(0, 1) // must not panic with no sink
	p.SFence()
}

func TestPersistIsCLWBPlusFence(t *testing.T) {
	p := New("x", 4096)
	rec := &recorder{}
	p.SetSink(rec)
	p.Persist(10, 100)
	want := []trace.Kind{trace.CLWB, trace.SFence}
	got := rec.kinds()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("persist kinds = %v", got)
	}
	if e := rec.entries[0]; e.Addr != 0 || e.Size != 128 {
		t.Errorf("persist flush range = [%#x, %#x)", e.Addr, e.Addr+e.Size)
	}
}

func TestFenceHookRunsBeforeFenceEntry(t *testing.T) {
	p := New("x", 128)
	rec := &recorder{}
	p.SetSink(rec)
	hooked := -1
	p.SetFenceHook(func() { hooked = len(rec.entries) })
	p.Store64(0, 1)
	p.CLWB(0, 8)
	p.SFence()
	if hooked != 2 {
		t.Fatalf("hook saw %d entries; the SFence entry must not precede it", hooked)
	}
}

func TestStageAndFlags(t *testing.T) {
	p := New("x", 128)
	rec := &recorder{}
	p.SetSink(rec)
	p.SetStage(trace.PostFailure)
	p.SetTID(7)
	p.EnterLibrary()
	p.EnterSkipDetection()
	p.Store64(0, 1)
	p.ExitSkipDetection()
	p.ExitLibrary()
	p.Store64(8, 2)
	a, b := rec.entries[0], rec.entries[1]
	if a.Stage != trace.PostFailure || a.TID != 7 || !a.InLibrary || !a.SkipDetection {
		t.Errorf("flagged entry = %+v", a)
	}
	if b.InLibrary || b.SkipDetection {
		t.Errorf("plain entry = %+v", b)
	}
	if !p.InLibrary() {
		// after exits, not in library
	}
}

func TestUnbalancedRegionPanics(t *testing.T) {
	p := New("x", 128)
	for i, fn := range []func(){p.ExitLibrary, p.ExitSkipDetection} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: unbalanced exit did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAnnounceEntry(t *testing.T) {
	p := New("x", 4096)
	rec := &recorder{}
	p.SetSink(rec)
	p.AnnounceEntry(trace.Entry{Kind: trace.RegCommitRange, Addr: 0, Size: 8, Addr2: 64, Size2: 8})
	e := rec.entries[0]
	if e.Kind != trace.RegCommitRange || e.Addr2 != 64 || e.Size2 != 8 {
		t.Fatalf("announced entry = %+v", e)
	}
	if e.IP == "" {
		t.Error("announced entry lacks caller location")
	}
}

// TestSnapshotMatchesWritesProperty: a random write sequence followed by
// Snapshot equals the same sequence applied to a plain byte slice
// (property-based model check of the device).
func TestSnapshotMatchesWritesProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := New("model", 4096)
		model := make([]byte, p.Size())
		for i := 0; i < int(n); i++ {
			off := r.Uint64() % (p.Size() - 8)
			switch r.Intn(4) {
			case 0:
				v := r.Uint64()
				p.Store64(off, v)
				for j := 0; j < 8; j++ {
					model[off+uint64(j)] = byte(v >> (8 * j))
				}
			case 1:
				b := byte(r.Intn(256))
				ln := r.Uint64()%64 + 1
				if off+ln > p.Size() {
					ln = p.Size() - off
				}
				p.Memset(off, b, ln)
				for j := uint64(0); j < ln; j++ {
					model[off+j] = b
				}
			case 2:
				p.CLWB(off, 8) // flushes must not change contents
			case 3:
				p.SFence()
			}
		}
		return bytes.Equal(p.Snapshot(), model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
