package pmem

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// File-backed pools with msync-granularity persistence.
//
// The paper's testbed DAX-maps PMDK pool files; the in-memory Pool of all
// prior PRs dropped the file and kept only the image. This file restores
// the file: a file-backed root pool keeps two views of the PM image —
//
//   - p.buf, an anonymous private mapping (mapAnon): the working image,
//     holding every store immediately, persisted or not, exactly like the
//     in-memory backend (footnote 3 of the paper: the image copy includes
//     non-persisted updates; the shadow PM tracks persistence).
//   - file.view, a shared read-write mapping of the backing file
//     (mapShared): the durable image, advanced only at persist
//     boundaries.
//
// Persistence reuses the PR 4 page-granular dirty machinery: every store
// path that marks p.dirty also marks file.syncDirty (markDirtyLocked),
// and at each persist boundary — every SFence and every failure-point
// snapshot (SnapshotErr) — persistLocked walks the bitmap, coalesces
// consecutive dirty pages into maximal ranges, copies each dirty page
// into the shared view unless its on-disk content already matches
// (compare-skip), and issues one synchronous msync per range. The file
// therefore always holds the image as of the last boundary, a killed
// campaign leaves it intact for -resume, and the deterministic replay of
// a resumed campaign re-msyncs nothing: every compare hits (the skipped
// counter, asserted by the resume tests).
//
// Post-failure pools are untouched by all of this: FromSnapshot views
// have no file state, so a post-failure execution can never advance the
// durable image.
//
// Disk faults flow through FaultHooks (faults.go): Msync (disk-full),
// ShortMsync (a prefix of the range persists), TornMmap (a page reads
// back torn after writeback) fail persistLocked with a *HarnessFault,
// dirty bits for unpersisted pages stay set, and the detection frontend's
// existing retry-once-then-quarantine path either retries the writeback
// or quarantines the failure point — never reporting a program bug.

// fileState is the file-backed half of a root Pool; nil on in-memory
// pools and on COW views. The pointer is set once at construction; the
// fields mutate only under Pool.mu.
type fileState struct {
	f    *os.File
	path string
	view []byte // shared rw mapping of the backing file: the durable image
	// syncDirty is the page bitmap of working-image writes not yet
	// persisted to view. A sibling of Pool.dirty with a different reset
	// schedule: dirty clears per incremental snapshot, syncDirty per
	// successful writeback.
	syncDirty []uint64
	// pending stashes a persist failure raised at an SFence (which has no
	// error path) until the next SnapshotErr surfaces it to the frontend's
	// retry-then-quarantine handling.
	pending error
	// Persist counters, exposed by FileStats.
	ranges  uint64 // coalesced dirty ranges msync'd
	written uint64 // pages copied into the durable view
	skipped uint64 // dirty pages skipped because the view already matched
	closed  bool
}

// NewFileBacked creates (resume=false) or reopens (resume=true) a pool
// whose durable image lives in the file at path. Size is rounded up to a
// whole number of cache lines and must match an existing file exactly —
// a size mismatch means the file belongs to a different campaign. The
// file is flock'd exclusively for the life of the pool; hooks (may be
// nil) injects creation-time disk faults and is installed on the pool.
func NewFileBacked(name, path string, size int, resume bool, hooks *FaultHooks) (*Pool, error) {
	if size <= 0 {
		panic(fmt.Sprintf("pmem: pool %q must have positive size, got %d", name, size))
	}
	if !fileBackendSupported {
		return nil, fmt.Errorf("pmem: file-backed pool %s: only supported on linux", path)
	}
	sz := LineUp(uint64(size))

	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if os.IsExist(err) {
		return nil, fmt.Errorf("pmem: pool file %s already exists; pass -resume to continue the campaign that owns it, or remove it to start over", path)
	}
	if err != nil {
		return nil, fmt.Errorf("pmem: open pool file: %w", err)
	}
	fail := func(err error) (*Pool, error) {
		f.Close()
		if !resume {
			os.Remove(path)
		}
		return nil, err
	}

	if err := lockFile(f); err != nil {
		return fail(fmt.Errorf("pmem: pool file %s is locked by another process (two shards sharing one pool file?): %w", path, err))
	}
	st, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("pmem: stat pool file: %w", err))
	}
	switch st.Size() {
	case 0:
		// Fresh file (or a resume of a campaign killed before the extend
		// completed): size it to the pool.
		if hooks != nil && hooks.Extend != nil {
			if err := hooks.Extend(sz); err != nil {
				return fail(&HarnessFault{Op: "pool-extend", Err: err})
			}
		}
		if err := f.Truncate(int64(sz)); err != nil {
			return fail(&HarnessFault{Op: "pool-extend", Err: err})
		}
	case int64(sz):
		if !resume {
			// Unreachable thanks to O_EXCL, but keep the invariant local.
			return fail(fmt.Errorf("pmem: pool file %s already exists", path))
		}
	default:
		return fail(fmt.Errorf("pmem: pool file %s has size %d, want %d; it belongs to a different campaign or pool size", path, st.Size(), sz))
	}

	view, err := mapShared(f, int(sz))
	if err != nil {
		return fail(fmt.Errorf("pmem: map pool file: %w", err))
	}
	buf, err := mapAnon(int(sz))
	if err != nil {
		unmap(view)
		return fail(fmt.Errorf("pmem: map working image: %w", err))
	}
	return &Pool{
		name:      name,
		size:      sz,
		buf:       buf,
		incSnap:   true,
		dirty:     make([]uint64, (numPages(sz)+63)/64),
		ipEnabled: true,
		faults:    hooks,
		file: &fileState{
			f:         f,
			path:      path,
			view:      view,
			syncDirty: make([]uint64, (numPages(sz)+63)/64),
		},
	}, nil
}

// FileBacked reports whether the pool's durable image lives in a file.
func (p *Pool) FileBacked() bool { return p.file != nil }

// FileStats reports the persist counters of a file-backed pool: coalesced
// dirty ranges msync'd, pages written back, and dirty pages skipped
// because their on-disk content already matched (compare-skip — the
// mechanism that makes a resumed campaign's replay re-msync nothing).
// All zero for in-memory pools.
func (p *Pool) FileStats() (ranges, written, skipped uint64) {
	if p.file == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.file.ranges, p.file.written, p.file.skipped
}

// Close persists any remaining dirty pages, fsyncs, unmaps and closes the
// backing file, releasing the pool-file lock. Closing an in-memory pool
// is a no-op, so the detection frontend closes unconditionally. The pool
// must not be used after Close; a persist or sync failure is returned as
// a *HarnessFault after the teardown completes.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fs := p.file
	if fs == nil || fs.closed {
		return nil
	}
	err := p.persistLocked()
	if serr := fs.f.Sync(); serr != nil && err == nil {
		err = &HarnessFault{Op: "msync", Err: serr}
	}
	unmap(fs.view)
	unmap(p.buf)
	fs.f.Close()
	fs.view = nil
	fs.closed = true
	p.buf = nil
	return err
}

// persistLocked writes every syncDirty page back to the durable view and
// msyncs each coalesced range; callers hold p.mu. A stashed SFence-time
// failure is surfaced (once) before any new writeback. On failure the
// unpersisted pages keep their dirty bits, so a retry — or the final
// persist in Close — covers exactly what is still missing.
func (p *Pool) persistLocked() error {
	fs := p.file
	if fs == nil || fs.closed {
		return nil
	}
	if err := fs.pending; err != nil {
		fs.pending = nil
		return err
	}
	n := numPages(p.size)
	for pg := 0; pg < n; {
		if fs.syncDirty[pg/64]&(1<<(pg%64)) == 0 {
			pg++
			continue
		}
		end := pg + 1
		for end < n && fs.syncDirty[end/64]&(1<<(end%64)) != 0 {
			end++
		}
		if err := p.persistRangeLocked(pg, end); err != nil {
			return err
		}
		pg = end
	}
	return nil
}

// persistRangeLocked writes back one maximal run of dirty pages
// [start, end) and msyncs it, consulting the disk fault hooks: Msync
// fails the whole range up front (disk-full), ShortMsync persists only a
// prefix, TornMmap fails a page after its write-back read-back. Callers
// hold p.mu.
func (p *Pool) persistRangeLocked(start, end int) error {
	fs := p.file
	h := p.faults
	lo := uint64(start) * PageSize
	_, hi := pageBounds(end-1, p.size)
	fs.ranges++

	if h != nil && h.Msync != nil {
		if err := h.Msync(lo, hi-lo); err != nil {
			return &HarnessFault{Op: "msync", Err: err}
		}
	}
	limit := hi
	var shortErr error
	if h != nil && h.ShortMsync != nil {
		if keep, err := h.ShortMsync(lo, hi-lo); err != nil {
			if lo+keep < hi {
				limit = lo + keep
			}
			shortErr = &HarnessFault{Op: "short-msync", Err: err}
		}
	}
	mutant := shortMsyncForTest
	if mutant && lo+shortMsyncKeep < limit {
		// The seeded mutant: silently persist only a prefix and, below,
		// clear the range's bits anyway — a short write whose error was
		// dropped on the floor.
		limit = lo + shortMsyncKeep
	}

	for pg := start; pg < end; pg++ {
		plo, phi := pageBounds(pg, p.size)
		clearBit := func() { fs.syncDirty[pg/64] &^= 1 << (pg % 64) }
		if plo >= limit {
			if mutant {
				clearBit()
			}
			continue
		}
		whi := phi
		if whi > limit {
			whi = limit
		}
		if whi == phi && bytes.Equal(p.buf[plo:phi], fs.view[plo:phi]) {
			fs.skipped++
			clearBit()
			continue
		}
		copy(fs.view[plo:whi], p.buf[plo:whi])
		fs.written++
		if whi < phi {
			// Short write: the page tail is stale, keep it dirty for the
			// retry (the mutant lies and marks it clean).
			if mutant {
				clearBit()
			}
			continue
		}
		if h != nil && h.TornMmap != nil {
			if err := h.TornMmap(uint64(pg)); err != nil {
				// Simulate the tear for real: the durable page is corrupt
				// until a retry rewrites it, so compare-skip cannot mask
				// the fault and the retry consults the hook again.
				tearPage(fs.view[plo:phi])
				return &HarnessFault{Op: "torn-mmap", Err: err}
			}
		}
		// Read the page back through the shared mapping: a genuinely torn
		// write-back must surface here, not as a bogus bug report later.
		if !bytes.Equal(fs.view[plo:phi], p.buf[plo:phi]) {
			return &HarnessFault{Op: "torn-mmap",
				Err: fmt.Errorf("page 0x%x read back torn after writeback", pg)}
		}
		clearBit()
	}

	if limit > lo {
		if err := msyncRange(fs.view[lo:limit]); err != nil {
			return &HarnessFault{Op: "msync", Err: err}
		}
	}
	return shortErr
}

// DiskFaultHooksFromSpec parses a deterministic disk-fault spec of the
// form "class:N", where class is one of disk-full, short-msync or
// torn-mmap and N is a 0-based consult index. The returned hooks fail the
// Nth and N+1th consult of that class's operation — both, so the
// frontend's retry-once also faults and the affected failure point is
// quarantined rather than silently healed — and succeed every other
// consult. The CLI wires this to the XFDETECTOR_DISK_FAULT environment
// variable when -pool-file is set; the CI smoke step depends on it.
func DiskFaultHooksFromSpec(spec string) (*FaultHooks, error) {
	class, nstr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("pmem: disk fault spec %q: want class:N", spec)
	}
	n, err := strconv.ParseUint(nstr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("pmem: disk fault spec %q: bad consult index: %v", spec, err)
	}
	var consults atomic.Uint64
	hit := func() bool {
		i := consults.Add(1) - 1
		return i == n || i == n+1
	}
	h := &FaultHooks{}
	switch class {
	case "disk-full":
		h.Msync = func(addr, size uint64) error {
			if hit() {
				return errNoSpace
			}
			return nil
		}
	case "short-msync":
		h.ShortMsync = func(addr, size uint64) (uint64, error) {
			if hit() {
				return size / 2, fmt.Errorf("injected short msync: %d of %d bytes reached the medium", size/2, size)
			}
			return 0, nil
		}
	case "torn-mmap":
		h.TornMmap = func(page uint64) error {
			if hit() {
				return fmt.Errorf("injected torn mmap: page 0x%x read back torn", page)
			}
			return nil
		}
	default:
		return nil, fmt.Errorf("pmem: disk fault spec %q: unknown class %q (want disk-full, short-msync or torn-mmap)", spec, class)
	}
	return h, nil
}
